"""Round-trip and robustness tests for trace readers/writers."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceFormatError, TraceTruncationError
from repro.trace import schema
from repro.trace.reader import TraceReader, read_trace
from repro.trace.record import LogRecord
from repro.trace.writer import TraceWriter, write_trace
from repro.types import CacheStatus, ContentCategory

# Strategy for arbitrary-but-valid log records.
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\x00"),
    min_size=1,
    max_size=30,
)
record_strategy = st.builds(
    LogRecord,
    timestamp=st.floats(min_value=0, max_value=604800, allow_nan=False),
    site=st.sampled_from(["V-1", "V-2", "P-1", "P-2", "S-1"]),
    object_id=_text,
    extension=st.sampled_from(["mp4", "jpg", "gif", "html", "flv"]),
    object_size=st.integers(min_value=0, max_value=10**12),
    user_id=_text,
    user_agent=_text,
    cache_status=st.sampled_from(list(CacheStatus)),
    status_code=st.sampled_from([200, 204, 206, 304, 403, 416]),
    bytes_served=st.integers(min_value=0, max_value=10**12),
    datacenter=st.sampled_from(["dc-europe", "dc-asia"]),
    chunk_index=st.integers(min_value=-1, max_value=1000),
)


def sample_records(n: int = 5) -> list[LogRecord]:
    return [
        LogRecord(
            timestamp=float(i),
            site="V-1",
            object_id=f"obj{i}",
            extension="mp4" if i % 2 == 0 else "jpg",
            object_size=1000 * (i + 1),
            user_id=f"user{i % 2}",
            user_agent="UA",
            cache_status=CacheStatus.HIT if i % 2 == 0 else CacheStatus.MISS,
            status_code=200,
            bytes_served=500,
        )
        for i in range(n)
    ]


class TestRoundTrips:
    @pytest.mark.parametrize("fmt", ["csv", "jsonl", "bin"])
    def test_write_read_roundtrip(self, tmp_path, fmt):
        path = tmp_path / f"trace.{fmt}"
        records = sample_records(20)
        written = write_trace(records, path)
        assert written == 20
        loaded = read_trace(path)
        assert loaded == records

    @settings(max_examples=30)
    @given(record=record_strategy)
    def test_row_roundtrip(self, record):
        assert schema.row_to_record(schema.record_to_row(record)) == record

    @settings(max_examples=30)
    @given(record=record_strategy)
    def test_dict_roundtrip(self, record):
        assert schema.dict_to_record(schema.record_to_dict(record)) == record

    @settings(max_examples=30)
    @given(record=record_strategy)
    def test_binary_roundtrip(self, record):
        packed = schema.pack_record(record)
        unpacked, offset = schema.unpack_record(packed)
        assert unpacked == record
        assert offset == len(packed)

    def test_binary_multiple_records_sequential(self):
        records = sample_records(4)
        buffer = b"".join(schema.pack_record(r) for r in records)
        offset = 0
        out = []
        for _ in records:
            record, offset = schema.unpack_record(buffer, offset)
            out.append(record)
        assert out == records


class TestWriter:
    def test_format_inferred_from_suffix(self, tmp_path):
        writer = TraceWriter(tmp_path / "x.jsonl")
        assert writer.fmt == "jsonl"

    def test_uninferrable_suffix_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            TraceWriter(tmp_path / "x.dat")

    def test_explicit_format_overrides(self, tmp_path):
        writer = TraceWriter(tmp_path / "x.dat", fmt="csv")
        assert writer.fmt == "csv"

    def test_write_before_open_rejected(self, tmp_path):
        writer = TraceWriter(tmp_path / "x.csv")
        with pytest.raises(TraceFormatError):
            writer.write(sample_records(1)[0])

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.csv"
        write_trace(sample_records(1), path)
        assert path.exists()

    def test_gzip_binary(self, tmp_path):
        path = tmp_path / "trace.bin.gz"
        records = sample_records(10)
        write_trace(records, path)
        assert read_trace(path) == records


class TestReader:
    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TraceFormatError):
            TraceReader(tmp_path / "nope.csv")

    def test_site_filter(self, tmp_path):
        records = sample_records(6)
        path = tmp_path / "t.csv"
        write_trace(records, path)
        assert read_trace(path, sites={"V-1"}) == records
        assert read_trace(path, sites={"P-1"}) == []

    def test_category_filter(self, tmp_path):
        records = sample_records(6)
        path = tmp_path / "t.jsonl"
        write_trace(records, path)
        videos = read_trace(path, categories={ContentCategory.VIDEO})
        assert all(r.category is ContentCategory.VIDEO for r in videos)
        assert len(videos) == 3

    def test_time_window_filter(self, tmp_path):
        records = sample_records(10)
        path = tmp_path / "t.bin"
        write_trace(records, path)
        window = read_trace(path, start=2.0, end=5.0)
        assert [r.timestamp for r in window] == [2.0, 3.0, 4.0]

    def test_corrupt_binary_magic_rejected(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"NOPE" + b"\x00" * 10)
        with pytest.raises(TraceFormatError):
            list(TraceReader(path))

    def test_truncated_binary_rejected(self, tmp_path):
        path = tmp_path / "t.bin"
        write_trace(sample_records(3), path)
        data = path.read_bytes()
        path.write_bytes(data[:-4])
        with pytest.raises(TraceFormatError):
            list(TraceReader(path))

    @staticmethod
    def _binary_parts(records):
        header = schema.BINARY_MAGIC + struct.pack("<H", schema.BINARY_VERSION)
        return header, [schema.pack_record(r) for r in records]

    def test_truncation_reported_with_byte_offset(self, tmp_path):
        # A genuinely truncated file raises TraceTruncationError naming the
        # byte offset where the cut-off record starts.
        header, packed = self._binary_parts(sample_records(3))
        path = tmp_path / "t.bin"
        path.write_bytes(header + packed[0] + packed[1] + packed[2][:-4])
        records = []
        with pytest.raises(TraceTruncationError) as excinfo:
            for record in TraceReader(path):
                records.append(record)
        # Everything before the truncated record was still yielded.
        assert len(records) == 2
        expected_offset = len(header) + len(packed[0]) + len(packed[1])
        assert f"byte {expected_offset}" in str(excinfo.value)

    def test_midfile_corruption_distinguished_from_short_read(self, tmp_path):
        # Regression: a corrupt record used to be indistinguishable from a
        # short read, so corruption was buffered to EOF and misreported as
        # trailing bytes.  Invalid UTF-8 in a string field must surface as
        # a plain TraceFormatError (not TraceTruncationError) at the
        # corrupt record's byte offset, after yielding the good records.
        header, packed = self._binary_parts(sample_records(3))
        bad = bytearray(packed[1])
        bad[schema._FIXED.size + 2] = 0xFF  # first byte of the site string
        path = tmp_path / "t.bin"
        path.write_bytes(header + packed[0] + bytes(bad) + packed[2])
        records = []
        with pytest.raises(TraceFormatError) as excinfo:
            for record in TraceReader(path):
                records.append(record)
        assert not isinstance(excinfo.value, TraceTruncationError)
        assert len(records) == 1
        assert f"byte {len(header) + len(packed[0])}" in str(excinfo.value)
        assert "UTF-8" in str(excinfo.value)

    def test_corrupt_fixed_header_flag_rejected(self, tmp_path):
        header, packed = self._binary_parts(sample_records(2))
        bad = bytearray(packed[0])
        bad[schema._FIXED.size - 1] = 7  # cache-status flag: only 0/1 valid
        path = tmp_path / "t.bin"
        path.write_bytes(header + bytes(bad) + packed[1])
        with pytest.raises(TraceFormatError) as excinfo:
            list(TraceReader(path))
        assert not isinstance(excinfo.value, TraceTruncationError)
        assert "cache-status flag" in str(excinfo.value)

    def test_unpack_record_short_buffer_raises_truncation(self):
        packed = schema.pack_record(sample_records(1)[0])
        for cut in (1, schema._FIXED.size - 1, schema._FIXED.size + 1, len(packed) - 1):
            with pytest.raises(TraceTruncationError):
                schema.unpack_record(packed[:cut])
        # The full buffer parses cleanly.
        record, end = schema.unpack_record(packed)
        assert end == len(packed)

    def test_bad_csv_header_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("wrong,header\n1,2\n")
        with pytest.raises(TraceFormatError):
            list(TraceReader(path))

    def test_invalid_jsonl_line_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceFormatError):
            list(TraceReader(path))

    def test_blank_jsonl_lines_skipped(self, tmp_path):
        records = sample_records(2)
        path = tmp_path / "t.jsonl"
        write_trace(records, path)
        path.write_text(path.read_text() + "\n\n")
        assert read_trace(path) == records

    def test_streaming_does_not_need_full_load(self, tmp_path):
        path = tmp_path / "t.csv"
        write_trace(sample_records(50), path)
        iterator = iter(TraceReader(path))
        first = next(iterator)
        assert first.timestamp == 0.0
