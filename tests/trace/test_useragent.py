"""Tests for user-agent synthesis and parsing."""

from __future__ import annotations

import pytest

from repro.stats.sampling import make_rng
from repro.trace.useragent import parse_user_agent, synthesize_user_agent
from repro.types import DeviceType


class TestRoundTrip:
    @pytest.mark.parametrize("device", list(DeviceType))
    def test_synthesized_ua_parses_to_same_device(self, device):
        rng = make_rng(0)
        for _ in range(30):
            ua = synthesize_user_agent(device, rng)
            assert parse_user_agent(ua).device is device, ua

    def test_synthesis_is_reproducible(self):
        assert synthesize_user_agent(DeviceType.DESKTOP, 5) == synthesize_user_agent(DeviceType.DESKTOP, 5)


class TestParsingRealWorldStrings:
    def test_windows_chrome(self):
        parsed = parse_user_agent(
            "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/120.0 Safari/537.36"
        )
        assert parsed.device is DeviceType.DESKTOP
        assert parsed.os == "Windows"
        assert parsed.browser == "Chrome"

    def test_iphone_safari(self):
        parsed = parse_user_agent(
            "Mozilla/5.0 (iPhone; CPU iPhone OS 15_4 like Mac OS X) AppleWebKit/605.1.15 "
            "(KHTML, like Gecko) Version/15.0 Mobile/15E148 Safari/604.1"
        )
        assert parsed.device is DeviceType.IOS
        assert parsed.os == "iOS"

    def test_android_phone(self):
        parsed = parse_user_agent(
            "Mozilla/5.0 (Linux; Android 11; SM-G991B) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/110.0 Mobile Safari/537.36"
        )
        assert parsed.device is DeviceType.ANDROID
        assert parsed.os == "Android"

    def test_android_tablet_is_misc(self):
        parsed = parse_user_agent(
            "Mozilla/5.0 (Linux; Android 11; SM-T870) AppleWebKit/537.36 "
            "(KHTML, like Gecko) Chrome/110.0 Safari/537.36"
        )
        assert parsed.device is DeviceType.MISC

    def test_ipad_is_misc(self):
        parsed = parse_user_agent(
            "Mozilla/5.0 (iPad; CPU OS 15_4 like Mac OS X) AppleWebKit/605.1.15 "
            "(KHTML, like Gecko) Version/15.0 Mobile/15E148 Safari/604.1"
        )
        assert parsed.device is DeviceType.MISC

    def test_smart_tv_is_misc(self):
        parsed = parse_user_agent("Mozilla/5.0 (SMART-TV; Linux; Tizen 6.0) AppleWebKit/537.36")
        assert parsed.device is DeviceType.MISC

    def test_empty_string_defaults_to_desktop(self):
        assert parse_user_agent("").device is DeviceType.DESKTOP

    def test_linux_firefox(self):
        parsed = parse_user_agent("Mozilla/5.0 (X11; Linux x86_64; rv:109.0) Gecko/20100101 Firefox/119.0")
        assert parsed.device is DeviceType.DESKTOP
        assert parsed.os == "Linux"
        assert parsed.browser == "Firefox"

    def test_crios_is_chrome_mobile(self):
        parsed = parse_user_agent(
            "Mozilla/5.0 (iPhone; CPU iPhone OS 15_4 like Mac OS X) AppleWebKit/605.1.15 "
            "(KHTML, like Gecko) CriOS/120.0 Mobile/15E148 Safari/604.1"
        )
        assert parsed.browser == "Chrome Mobile"
