"""Tests for the log-record model and category derivation."""

from __future__ import annotations

import pytest

from repro.errors import TraceSchemaError
from repro.trace.record import LogRecord
from repro.types import CacheStatus, ContentCategory, category_for_extension


def make_record(**overrides) -> LogRecord:
    defaults = dict(
        timestamp=12.5,
        site="V-1",
        object_id="o1234",
        extension="mp4",
        object_size=1_000_000,
        user_id="uabc",
        user_agent="Mozilla/5.0",
        cache_status=CacheStatus.HIT,
        status_code=200,
        bytes_served=1_000_000,
    )
    defaults.update(overrides)
    return LogRecord(**defaults)


class TestValidation:
    def test_valid_record_constructs(self):
        record = make_record()
        assert record.site == "V-1"

    def test_negative_timestamp_rejected(self):
        with pytest.raises(TraceSchemaError):
            make_record(timestamp=-1.0)

    def test_empty_site_rejected(self):
        with pytest.raises(TraceSchemaError):
            make_record(site="")

    def test_empty_object_rejected(self):
        with pytest.raises(TraceSchemaError):
            make_record(object_id="")

    def test_negative_size_rejected(self):
        with pytest.raises(TraceSchemaError):
            make_record(object_size=-5)

    def test_negative_bytes_served_rejected(self):
        with pytest.raises(TraceSchemaError):
            make_record(bytes_served=-5)

    def test_bogus_status_code_rejected(self):
        with pytest.raises(TraceSchemaError):
            make_record(status_code=42)

    def test_records_are_immutable(self):
        record = make_record()
        with pytest.raises(AttributeError):
            record.site = "X"


class TestDerivedFields:
    def test_category_from_extension(self):
        assert make_record(extension="mp4").category is ContentCategory.VIDEO
        assert make_record(extension="jpg").category is ContentCategory.IMAGE
        assert make_record(extension="css").category is ContentCategory.OTHER

    def test_is_hit(self):
        assert make_record(cache_status=CacheStatus.HIT).is_hit
        assert not make_record(cache_status=CacheStatus.MISS).is_hit

    def test_day_and_hour(self):
        record = make_record(timestamp=2 * 86400 + 3 * 3600 + 10)
        assert record.day == 2
        assert record.hour == 51


class TestCategoryMapping:
    @pytest.mark.parametrize("ext", ["flv", "MP4", ".avi", "wmv", "mpg", "webm"])
    def test_video_extensions(self, ext):
        assert category_for_extension(ext) is ContentCategory.VIDEO

    @pytest.mark.parametrize("ext", ["jpg", "JPEG", ".png", "gif", "tiff", "bmp"])
    def test_image_extensions(self, ext):
        assert category_for_extension(ext) is ContentCategory.IMAGE

    @pytest.mark.parametrize("ext", ["html", "css", "js", "xml", "mp3", "unknownext", ""])
    def test_other_extensions(self, ext):
        assert category_for_extension(ext) is ContentCategory.OTHER
