"""Columnar RecordBatch tests: round-trips, dictionary invariants, batch I/O.

The batch layer has one load-bearing invariant — string dictionaries
assign codes in first-appearance order, and every derived batch
(``concat``, ``rows``, ``take``, ``filter``) either preserves or shares
its parent's dictionaries.  The columnar dataset engine leans on this to
reproduce the scalar engine's iteration order exactly, so it is pinned
here independently of the dataset tests.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProjectionError, TraceFormatError, TraceTruncationError
from repro.trace import schema
from repro.trace.batch import (
    ALL_COLUMNS,
    CATEGORIES,
    NUMERIC_FIELDS,
    STRING_FIELDS,
    BatchBuilder,
    PrunedColumn,
    RecordBatch,
    iter_record_batches,
)
from repro.trace.reader import TraceReader
from repro.trace.record import LogRecord
from repro.trace.writer import TraceWriter, write_trace, write_trace_batches
from repro.types import CacheStatus

from tests.trace.test_io import record_strategy, sample_records


def varied_records(n: int = 24) -> list[LogRecord]:
    """Records spanning several sites/users/extensions so dictionaries
    have more than one entry and repeats out of order."""
    sites = ["V-1", "P-1", "V-1", "S-1", "P-2"]
    extensions = ["mp4", "jpg", "gif", "html"]
    return [
        LogRecord(
            timestamp=float(i),
            site=sites[i % len(sites)],
            object_id=f"obj{i % 7}",
            extension=extensions[i % len(extensions)],
            object_size=1000 + i,
            user_id=f"user{i % 5}",
            user_agent=f"UA-{i % 3}",
            cache_status=CacheStatus.HIT if i % 3 else CacheStatus.MISS,
            status_code=200 if i % 4 else 304,
            bytes_served=500 + i,
            datacenter="dc-europe" if i % 2 else "dc-asia",
            chunk_index=i % 3 - 1,
        )
        for i in range(n)
    ]


def first_appearance_order(values: list[str]) -> list[str]:
    seen: dict[str, None] = {}
    for value in values:
        seen.setdefault(value)
    return list(seen)


def assert_dictionaries_canonical(batch: RecordBatch, records: list[LogRecord]) -> None:
    """Every string column decodes to the source values AND its dictionary
    is ordered by first appearance in a sequential scan."""
    for field in STRING_FIELDS:
        column = getattr(batch, field)
        raw = [getattr(record, field) for record in records]
        assert column.tolist() == raw
        assert list(column.values) == first_appearance_order(raw)
        assert column.codes.dtype == np.int32


class TestRecordBatch:
    def test_from_records_roundtrip(self):
        records = varied_records()
        batch = RecordBatch.from_records(records)
        assert len(batch) == len(records)
        assert batch.to_records() == records
        assert_dictionaries_canonical(batch, records)

    def test_empty_batch(self):
        batch = RecordBatch.empty()
        assert len(batch) == 0
        assert batch.to_records() == []

    def test_reconstructed_records_after_drop(self):
        records = varied_records(8)
        batch = RecordBatch.from_records(records).drop_records()
        # Records rebuilt purely from the columns must match the originals.
        assert batch.to_records() == records
        assert batch.record_at(3) == records[3]

    def test_numeric_dtypes(self):
        batch = RecordBatch.from_records(varied_records(6))
        assert batch.timestamp.dtype == np.float64
        assert batch.object_size.dtype == np.int64
        assert batch.bytes_served.dtype == np.int64
        assert batch.category.dtype == np.uint8

    def test_category_codes_match_records(self):
        records = varied_records(12)
        batch = RecordBatch.from_records(records)
        assert [CATEGORIES[code] for code in batch.category] == [r.category for r in records]

    def test_concat_preserves_first_appearance_order(self):
        records = varied_records(30)
        parts = [
            RecordBatch.from_records(records[:10]),
            RecordBatch.from_records(records[10:17]),
            RecordBatch.from_records(records[17:]),
        ]
        merged = RecordBatch.concat(parts)
        assert merged.to_records() == records
        # The merged dictionaries must look exactly as if one sequential
        # scan had built the batch — the columnar engine depends on it.
        assert_dictionaries_canonical(merged, records)

    def test_concat_carries_record_cache(self):
        records = varied_records(10)
        parts = [RecordBatch.from_records(records[:5]), RecordBatch.from_records(records[5:])]
        merged = RecordBatch.concat(parts)
        assert merged._records == records
        dropped = [p.rows(0, len(p)).drop_records() for p in parts]
        assert RecordBatch.concat(dropped)._records is None

    def test_concat_skips_empty_batches(self):
        records = varied_records(6)
        merged = RecordBatch.concat(
            [RecordBatch.empty(), RecordBatch.from_records(records), RecordBatch.empty()]
        )
        assert merged.to_records() == records

    def test_rows_take_filter_share_dictionaries(self):
        records = varied_records(20)
        batch = RecordBatch.from_records(records)
        window = batch.rows(5, 12)
        taken = batch.take(np.array([1, 3, 5]))
        masked = batch.filter(batch.status_code == 200)
        for view in (window, taken, masked):
            for field in STRING_FIELDS:
                assert getattr(view, field).values is getattr(batch, field).values
        assert window.to_records() == records[5:12]
        assert taken.to_records() == [records[1], records[3], records[5]]
        assert masked.to_records() == [r for r in records if r.status_code == 200]

    def test_iter_record_batches_chunking(self):
        records = varied_records(25)
        batches = list(iter_record_batches(iter(records), batch_size=10))
        assert [len(b) for b in batches] == [10, 10, 5]
        assert [r for b in batches for r in b.iter_records()] == records

    @settings(max_examples=25)
    @given(records=st.lists(record_strategy, max_size=20))
    def test_roundtrip_property(self, records):
        batch = RecordBatch.from_records(records)
        assert batch.to_records() == records
        assert batch.drop_records().to_records() == records
        assert_dictionaries_canonical(batch, records)

    @settings(max_examples=25)
    @given(
        records=st.lists(record_strategy, min_size=1, max_size=20),
        split=st.integers(min_value=0, max_value=20),
    )
    def test_concat_equals_single_scan_property(self, records, split):
        split = min(split, len(records))
        merged = RecordBatch.concat(
            [RecordBatch.from_records(records[:split]), RecordBatch.from_records(records[split:])]
        )
        reference = RecordBatch.from_records(records)
        assert merged.to_records() == records
        for field in STRING_FIELDS:
            assert list(getattr(merged, field).values) == list(getattr(reference, field).values)
            assert np.array_equal(getattr(merged, field).codes, getattr(reference, field).codes)


class TestSelect:
    """Projection at the batch level: ``RecordBatch.select``."""

    def test_schema_constants_cover_every_column(self):
        assert ALL_COLUMNS == NUMERIC_FIELDS + STRING_FIELDS
        assert len(ALL_COLUMNS) == len(set(ALL_COLUMNS)) == 13

    def test_select_all_is_the_no_copy_fast_path(self):
        batch = RecordBatch.from_records(varied_records(8))
        assert batch.select(ALL_COLUMNS) is batch
        assert batch.select(list(ALL_COLUMNS)) is batch
        assert batch.select(frozenset(ALL_COLUMNS)) is batch

    def test_unknown_column_raises_keyerror_naming_it(self):
        batch = RecordBatch.from_records(varied_records(4))
        with pytest.raises(KeyError, match="bogus"):
            batch.select({"timestamp", "bogus"})

    def test_unpruned_batch_reports_no_pruned_columns(self):
        batch = RecordBatch.from_records(varied_records(4))
        assert batch.pruned_columns == ()

    @pytest.mark.parametrize("kept", ALL_COLUMNS)
    def test_single_column_select(self, kept):
        batch = RecordBatch.from_records(varied_records(12))
        pruned = batch.select({kept})
        assert len(pruned) == len(batch)
        # The kept column is shared, not copied.
        assert getattr(pruned, kept) is getattr(batch, kept)
        # Every other column is a sentinel, reported in schema order.
        expected = tuple(name for name in ALL_COLUMNS if name != kept)
        assert pruned.pruned_columns == expected
        for name in expected:
            column = getattr(pruned, name)
            assert isinstance(column, PrunedColumn)
            assert len(column) == len(batch)
            assert column.size == len(batch)
            assert column.nbytes == 0

    def test_string_columns_survive_with_intern_tables_intact(self):
        records = varied_records(20)
        batch = RecordBatch.from_records(records)
        pruned = batch.select(set(STRING_FIELDS))
        for field in STRING_FIELDS:
            column = getattr(pruned, field)
            raw = [getattr(record, field) for record in records]
            # Decodes identically and keeps first-appearance dictionary
            # order — the round-trip re-interns to the same table.
            assert column.tolist() == raw
            assert list(column.values) == first_appearance_order(raw)
            assert column.values is getattr(batch, field).values

    def test_empty_batch_select(self):
        pruned = RecordBatch.empty().select({"timestamp", "site"})
        assert len(pruned) == 0
        assert pruned.nbytes == 0
        assert "object_id" in pruned.pruned_columns

    @pytest.mark.parametrize(
        "access",
        [
            lambda c: c[0],
            lambda c: c.take(np.array([0])),
            lambda c: c.tolist(),
            lambda c: c.codes,
            lambda c: c.values,
        ],
        ids=["getitem", "take", "tolist", "codes", "values"],
    )
    def test_pruned_column_access_raises_naming_it(self, access):
        batch = RecordBatch.from_records(varied_records(6))
        pruned = batch.select({"timestamp"})
        with pytest.raises(ProjectionError, match="'site' was pruned"):
            access(pruned.site)

    def test_nbytes_accounts_for_exactly_the_dropped_columns(self):
        batch = RecordBatch.from_records(varied_records(32)).drop_records()
        kept = {"timestamp", "site", "bytes_served"}
        pruned = batch.select(kept)
        dropped_numeric = sum(
            getattr(batch, name).nbytes for name in NUMERIC_FIELDS if name not in kept
        )
        dropped_string = sum(
            getattr(batch, name).codes.nbytes for name in STRING_FIELDS if name not in kept
        )
        assert batch.nbytes - pruned.nbytes == dropped_numeric + dropped_string
        assert pruned.nbytes < batch.nbytes

    def test_select_drops_cached_record_objects(self):
        records = varied_records(5)
        batch = RecordBatch.from_records(records)
        assert batch._records is not None
        pruned = batch.select({"timestamp", "site"})
        # A row view over missing columns would be a lie, so the cache goes.
        assert pruned._records is None
        with pytest.raises(ProjectionError):
            pruned.to_records()
        with pytest.raises(ProjectionError):
            pruned.record_at(0)

    def test_row_views_of_pruned_batches_fail_loudly(self):
        # Row views rebuild every column, so a pruned batch refuses them
        # (naming the missing column) instead of yielding partial rows.
        batch = RecordBatch.from_records(varied_records(10)).drop_records()
        pruned = batch.select(set(ALL_COLUMNS) - {"chunk_index"})
        with pytest.raises(ProjectionError, match="'chunk_index' was pruned"):
            pruned.rows(2, 7)
        with pytest.raises(ProjectionError, match="'chunk_index' was pruned"):
            pruned.take(np.array([0, 1]))

    def test_writer_rejects_pruned_batches_loudly(self, tmp_path):
        batch = RecordBatch.from_records(varied_records(4))
        pruned = batch.select({"timestamp", "site"})
        with pytest.raises(ProjectionError):
            with TraceWriter(tmp_path / "t.bin") as writer:
                writer.write_batch(pruned)


class TestBatchIO:
    @pytest.mark.parametrize("fmt", ["csv", "jsonl", "bin"])
    def test_write_batch_read_batches_roundtrip(self, tmp_path, fmt):
        records = varied_records(40)
        path = tmp_path / f"trace.{fmt}"
        written = write_trace_batches(iter_record_batches(iter(records), batch_size=16), path)
        assert written == len(records)
        loaded = list(TraceReader(path).iter_batches(batch_size=16))
        assert [len(b) for b in loaded] == [16, 16, 8]
        assert [r for b in loaded for r in b.iter_records()] == records

    @pytest.mark.parametrize("fmt", ["csv", "jsonl", "bin"])
    def test_write_batch_identical_to_write_records(self, tmp_path, fmt):
        # The columnar writer must be byte-for-byte the record writer.
        records = varied_records(15)
        record_path = tmp_path / f"records.{fmt}"
        batch_path = tmp_path / f"batch.{fmt}"
        write_trace(records, record_path)
        batch = RecordBatch.from_records(records).drop_records()
        with TraceWriter(batch_path) as writer:
            writer.write_batch(batch)
        assert batch_path.read_bytes() == record_path.read_bytes()

    def test_reader_filters_apply_to_batches(self, tmp_path):
        records = varied_records(20)
        path = tmp_path / "t.csv"
        write_trace(records, path)
        reader = TraceReader(path, sites={"V-1"})
        loaded = [r for b in reader.iter_batches(batch_size=4) for r in b.iter_records()]
        assert loaded == [r for r in records if r.site == "V-1"]

    def test_truncated_binary_flushes_partial_batch(self, tmp_path):
        # Good records parsed before the cut must be flushed as a final
        # partial batch before the truncation error propagates.
        records = sample_records(5)
        header = schema.BINARY_MAGIC + struct.pack("<H", schema.BINARY_VERSION)
        packed = [schema.pack_record(r) for r in records]
        path = tmp_path / "t.bin"
        path.write_bytes(header + b"".join(packed[:4]) + packed[4][:-3])
        seen: list[LogRecord] = []
        with pytest.raises(TraceTruncationError):
            for batch in TraceReader(path).iter_batches(batch_size=3):
                seen.extend(batch.iter_records())
        assert seen == records[:4]

    def test_corrupt_binary_flushes_partial_batch(self, tmp_path):
        records = sample_records(4)
        header = schema.BINARY_MAGIC + struct.pack("<H", schema.BINARY_VERSION)
        packed = [schema.pack_record(r) for r in records]
        bad = bytearray(packed[2])
        bad[schema._FIXED.size + 2] = 0xFF  # invalid UTF-8 in the site string
        path = tmp_path / "t.bin"
        path.write_bytes(header + packed[0] + packed[1] + bytes(bad) + packed[3])
        seen: list[LogRecord] = []
        with pytest.raises(TraceFormatError):
            for batch in TraceReader(path).iter_batches(batch_size=10):
                seen.extend(batch.iter_records())
        assert seen == records[:2]

    def test_corrupt_jsonl_flushes_partial_batch(self, tmp_path):
        records = sample_records(3)
        path = tmp_path / "t.jsonl"
        write_trace(records, path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        seen: list[LogRecord] = []
        with pytest.raises(TraceFormatError):
            for batch in TraceReader(path).iter_batches(batch_size=100):
                seen.extend(batch.iter_records())
        assert seen == records


class TestStreamingKillPoints:
    """Mid-batch kill-point fuzz for the streaming (``keep_records=False``)
    reader path: for *every* byte at which a binary trace can be cut, the
    complete records parsed before the cut must be flushed (as record-free
    column batches), and the :class:`TraceTruncationError` must name the
    byte offset of the first incomplete record."""

    @staticmethod
    def _binary_trace(records):
        header = schema.BINARY_MAGIC + struct.pack("<H", schema.BINARY_VERSION)
        packed = [schema.pack_record(r) for r in records]
        boundaries = [len(header)]
        for blob in packed:
            boundaries.append(boundaries[-1] + len(blob))
        return header + b"".join(packed), boundaries

    @staticmethod
    def _stream(path):
        """Consume the streaming reader, returning records decoded purely
        from columns (every flushed batch must already be record-free)."""
        seen: list[LogRecord] = []
        for batch in TraceReader(path).iter_batches(batch_size=3, keep_records=False):
            assert batch._records is None
            seen.extend(batch.to_records())
        return seen

    def test_every_kill_point_flushes_then_reports_offset(self, tmp_path):
        import bisect

        records = varied_records(8)
        blob, boundaries = self._binary_trace(records)
        path = tmp_path / "t.bin"
        for cut in range(boundaries[0], len(blob)):
            path.write_bytes(blob[:cut])
            n_complete = bisect.bisect_right(boundaries, cut) - 1
            if cut in boundaries:
                # Cut on a record boundary: clean EOF, no error.
                assert self._stream(path) == records[:n_complete]
                continue
            seen: list[LogRecord] = []
            with pytest.raises(TraceTruncationError) as error:
                for batch in TraceReader(path).iter_batches(batch_size=3, keep_records=False):
                    seen.extend(batch.to_records())
            # Every complete record before the cut was flushed first ...
            assert seen == records[:n_complete]
            # ... and the error names the incomplete record's byte offset.
            assert f"at byte {boundaries[n_complete]}" in str(error.value)
            assert f"({cut - boundaries[n_complete]} trailing bytes)" in str(error.value)

    def test_corrupt_record_mid_batch_names_offset(self, tmp_path):
        records = varied_records(9)
        blob, boundaries = self._binary_trace(records)
        corrupt_index = 5
        mangled = bytearray(blob)
        # Invalid UTF-8 inside record 5's site string.
        mangled[boundaries[corrupt_index] + schema._FIXED.size + 2] = 0xFF
        path = tmp_path / "t.bin"
        path.write_bytes(bytes(mangled))
        seen: list[LogRecord] = []
        with pytest.raises(TraceFormatError) as error:
            for batch in TraceReader(path).iter_batches(batch_size=4, keep_records=False):
                seen.extend(batch.to_records())
        assert seen == records[:corrupt_index]
        assert f"corrupt record at byte {boundaries[corrupt_index]}" in str(error.value)

    def test_from_file_streaming_propagates_truncation(self, tmp_path):
        from repro.core.dataset import TraceDataset

        records = varied_records(10)
        blob, boundaries = self._binary_trace(records)
        path = tmp_path / "t.bin"
        path.write_bytes(blob[: boundaries[7] + 5])  # mid-record 7
        with pytest.raises(TraceTruncationError) as error:
            TraceDataset.from_file(path, batch_size=4, keep_store=False)
        assert f"at byte {boundaries[7]}" in str(error.value)


class TestBatchBuilder:
    def test_interning_reuses_codes(self):
        builder = BatchBuilder()
        records = varied_records(10)
        for record in records:
            builder.append(record)
        batch = builder.finish()
        assert_dictionaries_canonical(batch, records)

    def test_finish_empty(self):
        assert len(BatchBuilder().finish()) == 0
