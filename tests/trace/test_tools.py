"""Tests for trace merge/split/summarise tools."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.trace.reader import read_trace
from repro.trace.record import LogRecord
from repro.trace.tools import (
    merge_traces,
    split_trace_by_day,
    split_trace_by_site,
    summarize_trace,
)
from repro.trace.writer import write_trace
from repro.types import CacheStatus


def record(ts, site="V-1", status=200, hit=True):
    return LogRecord(
        timestamp=ts, site=site, object_id=f"o{site}", extension="mp4",
        object_size=1000, user_id="u1", user_agent="UA",
        cache_status=CacheStatus.HIT if hit else CacheStatus.MISS,
        status_code=status, bytes_served=1000 if status in (200, 206) else 0,
    )


class TestMerge:
    def test_merge_keeps_time_order(self, tmp_path):
        a = tmp_path / "a.csv"
        b = tmp_path / "b.csv"
        write_trace([record(0.0), record(10.0), record(20.0)], a)
        write_trace([record(5.0, site="P-1"), record(15.0, site="P-1")], b)
        out = tmp_path / "merged.csv"
        written = merge_traces([a, b], out)
        assert written == 5
        merged = read_trace(out)
        times = [r.timestamp for r in merged]
        assert times == sorted(times)

    def test_merge_formats_can_differ(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.bin"
        write_trace([record(1.0)], a)
        write_trace([record(2.0)], b)
        out = tmp_path / "merged.csv"
        assert merge_traces([a, b], out) == 2

    def test_empty_inputs_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            merge_traces([], tmp_path / "out.csv")


class TestSplit:
    def test_split_by_site(self, tmp_path):
        source = tmp_path / "trace.csv"
        write_trace(
            [record(0.0, site="V-1"), record(1.0, site="P-1"), record(2.0, site="V-1")],
            source,
        )
        parts = split_trace_by_site(source, tmp_path / "by_site")
        assert set(parts) == {"V-1", "P-1"}
        assert len(read_trace(parts["V-1"])) == 2
        assert len(read_trace(parts["P-1"])) == 1

    def test_split_by_day(self, tmp_path):
        source = tmp_path / "trace.csv"
        write_trace([record(0.0), record(86_400.0 + 5), record(86_400.0 + 10)], source)
        parts = split_trace_by_day(source, tmp_path / "by_day")
        assert set(parts) == {0, 1}
        assert len(read_trace(parts[1])) == 2

    def test_split_roundtrip_covers_all_records(self, tmp_path):
        source = tmp_path / "trace.csv"
        records = [record(float(i), site=f"S-{i % 3}") for i in range(30)]
        write_trace(records, source)
        parts = split_trace_by_site(source, tmp_path / "by_site")
        total = sum(len(read_trace(path)) for path in parts.values())
        assert total == 30


class TestSummarize:
    def test_summary_counts(self, tmp_path):
        source = tmp_path / "trace.csv"
        write_trace(
            [
                record(0.0, hit=True),
                record(100.0, site="P-1", hit=False),
                record(86_400.0, status=403, hit=False),
            ],
            source,
        )
        summary = summarize_trace(source)
        assert summary.records == 3
        assert summary.hits == 1
        assert summary.hit_ratio == pytest.approx(1 / 3)
        assert summary.duration_days == pytest.approx(1.0)
        assert summary.site_records["V-1"] == 2
        assert summary.status_codes[403] == 1
        assert summary.bytes_served == 2000

    def test_render_mentions_sites_and_codes(self, tmp_path):
        source = tmp_path / "trace.csv"
        write_trace([record(0.0)], source)
        text = summarize_trace(source).render()
        assert "V-1" in text
        assert "200" in text
