"""Tests for identifier anonymisation."""

from __future__ import annotations

import pytest

from repro.trace.anonymize import Anonymizer


class TestAnonymizer:
    def test_stable_within_instance(self):
        anon = Anonymizer(salt="s")
        assert anon.user("10.0.0.1") == anon.user("10.0.0.1")

    def test_stable_across_instances_with_same_salt(self):
        assert Anonymizer(salt="s").user("x") == Anonymizer(salt="s").user("x")

    def test_different_salts_unlinkable(self):
        assert Anonymizer(salt="a").user("x") != Anonymizer(salt="b").user("x")

    def test_different_inputs_differ(self):
        anon = Anonymizer()
        assert anon.user("10.0.0.1") != anon.user("10.0.0.2")

    def test_namespacing_prevents_cross_kind_collisions(self):
        anon = Anonymizer()
        assert anon.token("user", "same") != anon.token("url", "same")

    def test_prefixes(self):
        anon = Anonymizer()
        assert anon.user("x").startswith("u")
        assert anon.url("http://example/a.mp4").startswith("o")

    def test_token_length(self):
        anon = Anonymizer(digest_chars=24)
        assert len(anon.token("user", "x")) == 24

    def test_digest_chars_bounds(self):
        with pytest.raises(ValueError):
            Anonymizer(digest_chars=4)
        with pytest.raises(ValueError):
            Anonymizer(digest_chars=100)

    def test_raw_value_not_in_token(self):
        anon = Anonymizer()
        assert "10.0.0.1" not in anon.user("10.0.0.1")
