"""Tests for the origin server, browser cache and HTTP semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cdn.browser import BrowserCache
from repro.cdn.http import ClientIntent, ClientModel, decide_response
from repro.cdn.origin import OriginServer
from repro.stats.sampling import make_rng
from repro.types import ContentCategory, TrendClass
from repro.workload.catalog import ContentObject
from repro.workload.sessions import SESSION_TIMEOUT_SECONDS


def make_object(category=ContentCategory.VIDEO, size=10_000_000, birth=0.0) -> ContentObject:
    ext = {"video": "mp4", "image": "jpg", "other": "html"}[category.value]
    return ContentObject(
        object_id=f"{category.value}-obj",
        site="V-1",
        category=category,
        extension=ext,
        size_bytes=size,
        birth_time=birth,
        trend=TrendClass.DIURNAL,
        popularity_weight=1.0,
    )


class TestOriginServer:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            OriginServer(forbidden_rate=1.0)
        with pytest.raises(ValueError):
            OriginServer(mutation_rate_per_day=-1)

    def test_unpublished_object_not_served(self):
        origin = OriginServer(rng=make_rng(0))
        obj = make_object(birth=1000.0)
        response = origin.fetch(obj, 100, now=500.0)
        assert not response.allowed

    def test_fetch_accounts_bytes(self):
        origin = OriginServer(rng=make_rng(0))
        obj = make_object()
        origin.fetch(obj, 100, now=0.0)
        origin.fetch(obj, 200, now=1.0)
        assert origin.fetches == 2
        assert origin.bytes_served == 300

    def test_version_starts_at_one(self):
        origin = OriginServer(mutation_rate_per_day=0.0, rng=make_rng(0))
        assert origin.current_version(make_object(), now=0.0) == 1

    def test_version_monotone_nondecreasing(self):
        origin = OriginServer(mutation_rate_per_day=5.0, rng=make_rng(0))
        obj = make_object()
        versions = [origin.current_version(obj, now=t * 86400.0) for t in range(5)]
        assert versions == sorted(versions)

    def test_no_mutations_when_rate_zero(self):
        origin = OriginServer(mutation_rate_per_day=0.0, rng=make_rng(0))
        obj = make_object()
        assert origin.current_version(obj, now=30 * 86400.0) == 1

    def test_access_control_rate(self):
        origin = OriginServer(forbidden_rate=0.3, rng=make_rng(1))
        rng = make_rng(2)
        denials = sum(not origin.check_access(rng) for _ in range(5000)) / 5000
        assert denials == pytest.approx(0.3, abs=0.03)


class TestBrowserCache:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            BrowserCache(capacity_bytes=0)

    def test_put_get(self):
        browser = BrowserCache()
        browser.put("a", 100, version=1, now=0.0)
        entry = browser.get("a")
        assert entry is not None
        assert entry.version == 1

    def test_lru_eviction(self):
        browser = BrowserCache(capacity_bytes=250)
        browser.put("a", 100, 1, 0.0)
        browser.put("b", 100, 1, 1.0)
        browser.get("a")
        browser.put("c", 100, 1, 2.0)  # evicts b
        assert browser.get("b") is None
        assert browser.get("a") is not None

    def test_oversized_rejected(self):
        browser = BrowserCache(capacity_bytes=100)
        assert not browser.put("big", 200, 1, 0.0)

    def test_incognito_clears_between_sessions(self):
        browser = BrowserCache(incognito=True)
        browser.observe_request_time(0.0)
        browser.put("a", 100, 1, 0.0)
        browser.observe_request_time(100.0)  # same session
        assert browser.get("a") is not None
        browser.observe_request_time(100.0 + SESSION_TIMEOUT_SECONDS + 1)  # new session
        assert browser.get("a") is None

    def test_regular_browser_keeps_cache_across_sessions(self):
        browser = BrowserCache(incognito=False)
        browser.observe_request_time(0.0)
        browser.put("a", 100, 1, 0.0)
        browser.observe_request_time(1e6)
        assert browser.get("a") is not None

    def test_reput_updates_bytes(self):
        browser = BrowserCache(capacity_bytes=300)
        browser.put("a", 100, 1, 0.0)
        browser.put("a", 200, 2, 1.0)
        assert browser.used_bytes == 200
        assert browser.get("a").version == 2


class TestClientModel:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ClientModel(video_range_prob=1.5)

    def test_cached_copy_goes_conditional(self):
        model = ClientModel()
        intent = model.intent(make_object(), cached_version=3, rng=make_rng(0))
        assert intent.kind == "conditional"
        assert intent.conditional_version == 3

    def test_video_range_requests_common(self):
        model = ClientModel(video_range_prob=0.5)
        rng = make_rng(1)
        kinds = [model.intent(make_object(), None, rng).kind for _ in range(2000)]
        share = kinds.count("range") / len(kinds)
        assert share == pytest.approx(0.5, abs=0.04)

    def test_images_never_range(self):
        model = ClientModel()
        rng = make_rng(2)
        obj = make_object(ContentCategory.IMAGE, size=100_000)
        for _ in range(300):
            assert model.intent(obj, None, rng).kind == "full"

    def test_other_category_can_beacon(self):
        model = ClientModel(beacon_prob=0.5)
        rng = make_rng(3)
        obj = make_object(ContentCategory.OTHER, size=1000)
        kinds = {model.intent(obj, None, rng).kind for _ in range(100)}
        assert "beacon" in kinds

    def test_range_bounds_within_object(self):
        model = ClientModel(video_range_prob=1.0, bad_range_prob=0.0)
        rng = make_rng(4)
        obj = make_object(size=1_000_000)
        for _ in range(200):
            intent = model.intent(obj, None, rng)
            assert 0 <= intent.range_start < obj.size_bytes
            assert intent.range_length >= 1


class TestDecideResponse:
    def test_forbidden(self):
        decision = decide_response(ClientIntent(kind="full"), make_object(), allowed=False, current_version=1)
        assert decision.status_code == 403
        assert decision.bytes_served == 0

    def test_full_200(self):
        obj = make_object(size=5000)
        decision = decide_response(ClientIntent(kind="full"), obj, True, 1)
        assert decision.status_code == 200
        assert decision.bytes_served == 5000

    def test_beacon_204(self):
        decision = decide_response(ClientIntent(kind="beacon"), make_object(), True, 1)
        assert decision.status_code == 204
        assert decision.bytes_served == 0

    def test_conditional_match_304(self):
        decision = decide_response(
            ClientIntent(kind="conditional", conditional_version=4), make_object(), True, 4
        )
        assert decision.status_code == 304
        assert decision.bytes_served == 0

    def test_conditional_mismatch_200(self):
        obj = make_object(size=777)
        decision = decide_response(ClientIntent(kind="conditional", conditional_version=3), obj, True, 4)
        assert decision.status_code == 200
        assert decision.bytes_served == 777

    def test_valid_range_206(self):
        obj = make_object(size=10_000)
        intent = ClientIntent(kind="range", range_start=5_000, range_length=2_000)
        decision = decide_response(intent, obj, True, 1)
        assert decision.status_code == 206
        assert decision.bytes_served == 2_000

    def test_range_clamped_to_object_end(self):
        obj = make_object(size=10_000)
        intent = ClientIntent(kind="range", range_start=9_000, range_length=5_000)
        decision = decide_response(intent, obj, True, 1)
        assert decision.bytes_served == 1_000

    def test_bad_range_416(self):
        intent = ClientIntent(kind="range", range_valid=False)
        decision = decide_response(intent, make_object(), True, 1)
        assert decision.status_code == 416
        assert decision.bytes_served == 0
