"""Tests for push-based replication."""

from __future__ import annotations

import pytest

from repro.cdn.cache import Cache
from repro.cdn.chunking import Chunker
from repro.cdn.geo import DataCenter
from repro.cdn.origin import OriginServer
from repro.cdn.policies import LruPolicy
from repro.cdn.replication import PUSHABLE_TRENDS, PushReplicator
from repro.cdn.server import EdgeServer
from repro.stats.sampling import make_rng
from repro.types import Continent, ContentCategory, TrendClass
from repro.workload.catalog import ContentCatalog, ContentObject


def make_object(idx: int, trend: TrendClass, weight: float, birth: float, size: int = 500_000) -> ContentObject:
    return ContentObject(
        object_id=f"obj-{idx}",
        site="V-1",
        category=ContentCategory.VIDEO if size > 100_000 else ContentCategory.IMAGE,
        extension="mp4",
        size_bytes=size,
        birth_time=birth,
        trend=trend,
        popularity_weight=weight,
    )


def make_edges(count: int = 2) -> list[EdgeServer]:
    origin = OriginServer(mutation_rate_per_day=0.0, rng=make_rng(0))
    chunker = Chunker(1_000_000)
    edges = []
    for i in range(count):
        cache = Cache(capacity_bytes=10**9, policy=LruPolicy())
        dc = DataCenter(f"dc-{i}", Continent.EUROPE, 10**9)
        edges.append(EdgeServer(dc, cache, cache, origin, chunker))
    return edges


class TestPlan:
    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            PushReplicator(popularity_quantile=1.0)

    def test_plan_selects_popular_pushable_injected(self):
        objects = [
            make_object(0, TrendClass.DIURNAL, weight=1.0, birth=100.0),      # pushable
            make_object(1, TrendClass.DIURNAL, weight=0.001, birth=100.0),    # unpopular
            make_object(2, TrendClass.SHORT_LIVED, weight=1.0, birth=100.0),  # wrong trend
            make_object(3, TrendClass.LONG_LIVED, weight=1.0, birth=0.0),     # pre-existing
            make_object(4, TrendClass.LONG_LIVED, weight=1.0, birth=500.0),   # pushable
        ]
        replicator = PushReplicator(popularity_quantile=0.5)
        planned = replicator.build_plan([ContentCatalog("V-1", objects)])
        assert planned == 2
        assert replicator.pending == 2

    def test_plan_is_time_ordered(self):
        objects = [
            make_object(i, TrendClass.DIURNAL, weight=1.0, birth=float(1000 - i))
            for i in range(5)
        ]
        replicator = PushReplicator(popularity_quantile=0.0)
        replicator.build_plan([ContentCatalog("V-1", objects)])
        births = [birth for birth, _ in replicator._plan]
        assert births == sorted(births)

    def test_pushable_trends_are_the_papers(self):
        assert PUSHABLE_TRENDS == {TrendClass.DIURNAL, TrendClass.LONG_LIVED}


class TestAdvance:
    def test_pushes_execute_when_clock_passes_birth(self):
        obj = make_object(0, TrendClass.DIURNAL, weight=1.0, birth=100.0, size=2_500_000)
        replicator = PushReplicator(popularity_quantile=0.0)
        replicator.build_plan([ContentCatalog("V-1", [obj])])
        edges = make_edges(2)

        assert replicator.advance(50.0, edges) == 0
        assert replicator.pending == 1
        assert replicator.advance(100.0, edges) == 1
        assert replicator.pending == 0
        # Chunks installed on every edge.
        for edge in edges:
            assert edge.large_cache.peek("obj-0#c0") is not None
        assert replicator.stats.objects_pushed == 1
        assert replicator.stats.chunks_pushed == 2 * 3  # 3 chunks x 2 edges
        assert replicator.stats.bytes_pushed == 2 * 2_500_000

    def test_advance_is_idempotent_past_plan_end(self):
        obj = make_object(0, TrendClass.DIURNAL, weight=1.0, birth=10.0)
        replicator = PushReplicator(popularity_quantile=0.0)
        replicator.build_plan([ContentCatalog("V-1", [obj])])
        edges = make_edges(1)
        assert replicator.advance(1e9, edges) == 1
        assert replicator.advance(2e9, edges) == 0

    def test_pushed_object_hits_on_first_request(self):
        from repro.cdn.http import ClientIntent
        from repro.types import CacheStatus

        obj = make_object(0, TrendClass.DIURNAL, weight=1.0, birth=100.0)
        replicator = PushReplicator(popularity_quantile=0.0)
        replicator.build_plan([ContentCatalog("V-1", [obj])])
        edges = make_edges(1)
        replicator.advance(100.0, edges)
        result = edges[0].serve(obj, ClientIntent(kind="full"), now=150.0)
        assert result.cache_status is CacheStatus.HIT


class TestSimulatorIntegration:
    def test_enable_push_improves_injected_object_hits(self):
        from repro.cdn.simulator import CdnSimulator, SimulationConfig
        from repro.workload.generator import WorkloadGenerator
        from repro.workload.profiles import profile_v1
        from repro.workload.scale import ScaleConfig

        generator = WorkloadGenerator(profiles=(profile_v1(),), scale=ScaleConfig.tiny(), seed=3)
        workload = generator.generate_site(profile_v1())

        def run(push: bool) -> float:
            config = SimulationConfig(seed=4, cache_capacity_bytes=20 * 10**9)
            simulator = CdnSimulator(profiles=(profile_v1(),), config=config)
            simulator.warm([workload.catalog])
            if push:
                assert simulator.enable_push([workload.catalog]) > 0
            for _ in simulator.run(iter(workload.requests)):
                pass
            return simulator.metrics.overall_hit_ratio

        assert run(push=True) >= run(push=False)
