"""Tests for the end-to-end CDN simulator."""

from __future__ import annotations

import pytest

from repro.cdn.simulator import CdnSimulator, SimulationConfig
from repro.types import CacheStatus, ContentCategory, OBSERVED_STATUS_CODES
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import ALL_PROFILES, profile_v2
from repro.workload.scale import ScaleConfig


@pytest.fixture(scope="module")
def v2_run():
    """One simulated site: (workload, simulator, records)."""
    generator = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=5)
    workload = generator.generate_site(profile_v2())
    simulator = CdnSimulator(profiles=(profile_v2(),), config=SimulationConfig(seed=6))
    simulator.warm([workload.catalog])
    records = list(simulator.run(iter(workload.requests)))
    return workload, simulator, records


class TestSimulatorOutput:
    def test_emits_records_for_most_requests(self, v2_run):
        workload, _, records = v2_run
        # Some requests are served purely from browser caches (no record).
        assert 0.5 * workload.request_count <= len(records) <= workload.request_count

    def test_records_time_ordered(self, v2_run):
        _, _, records = v2_run
        times = [r.timestamp for r in records]
        assert times == sorted(times)

    def test_status_codes_within_paper_set(self, v2_run):
        _, _, records = v2_run
        assert {r.status_code for r in records} <= set(OBSERVED_STATUS_CODES)

    def test_200_dominates(self, v2_run):
        _, _, records = v2_run
        share_200 = sum(r.status_code == 200 for r in records) / len(records)
        assert share_200 > 0.5

    def test_user_ids_anonymized(self, v2_run):
        workload, _, records = v2_run
        raw_ids = {u.user_id for u in workload.population}
        for record in records[:300]:
            assert record.user_id not in raw_ids
            assert record.user_id.startswith("u")

    def test_object_ids_anonymized_but_stable(self, v2_run):
        workload, _, records = v2_run
        raw_ids = {o.object_id for o in workload.catalog}
        seen: dict[str, str] = {}
        for record in records[:500]:
            assert record.object_id not in raw_ids
            # same extension+size combination maps consistently
        tokens = {r.object_id for r in records}
        assert len(tokens) <= len(workload.catalog)

    def test_bytes_served_zero_for_bodyless_codes(self, v2_run):
        _, _, records = v2_run
        for record in records:
            if record.status_code in (204, 304, 403, 416):
                assert record.bytes_served == 0

    def test_206_only_for_video(self, v2_run):
        _, _, records = v2_run
        for record in records:
            if record.status_code == 206:
                assert record.category is ContentCategory.VIDEO

    def test_metrics_match_records(self, v2_run):
        _, simulator, records = v2_run
        assert simulator.metrics.total_requests == len(records)
        hit_records = sum(r.cache_status is CacheStatus.HIT for r in records)
        hits_metric = sum(m.hits for m in simulator.metrics.sites.values())
        assert hits_metric == hit_records

    def test_datacenters_used_match_topology(self, v2_run):
        _, simulator, records = v2_run
        dc_ids = {r.datacenter for r in records}
        assert dc_ids <= set(simulator.edges)
        assert len(dc_ids) >= 2  # users span continents


class TestWarm:
    def test_warm_inserts_entries(self):
        generator = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=5)
        workload = generator.generate_site(profile_v2())
        simulator = CdnSimulator(profiles=(profile_v2(),), config=SimulationConfig(seed=6))
        inserted = simulator.warm([workload.catalog])
        assert inserted > 0
        for edge in simulator.edges.values():
            assert sum(len(c) for c in edge.caches()) > 0

    def test_warm_respects_fill_fraction(self):
        generator = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=5)
        workload = generator.generate_site(profile_v2())
        config = SimulationConfig(seed=6, warm_fill_fraction=0.5, cache_capacity_bytes=10**9)
        simulator = CdnSimulator(profiles=(profile_v2(),), config=config)
        simulator.warm([workload.catalog])
        for edge in simulator.edges.values():
            for cache in edge.caches():
                assert cache.used_bytes <= 0.5 * cache.capacity_bytes + 10**8

    def test_warm_admits_chunked_objects_atomically(self):
        """An object straddling the warm budget must be skipped whole —
        a half-warmed multi-chunk video would start the trace with the
        mixed hit/miss stream the per-object admission draw prevents."""
        from repro.types import TrendClass
        from repro.workload.catalog import ContentObject

        def obj(object_id, category, extension, size, weight):
            return ContentObject(
                object_id=object_id,
                site="V-2",
                category=category,
                extension=extension,
                size_bytes=size,
                birth_time=0.0,
                trend=TrendClass.LONG_LIVED,
                popularity_weight=weight,
            )

        image = obj("img", ContentCategory.IMAGE, "jpg", 20_000, 9.0)
        video1 = obj("vid1", ContentCategory.VIDEO, "mp4", 10_000_000, 5.0)  # 5 chunks
        video2 = obj("vid2", ContentCategory.VIDEO, "mp4", 10_000_000, 1.0)  # 5 chunks
        # Budget 0.8 × 20 MB = 16 MB: image + video1 fit (≈10.02 MB),
        # video2's 10 MB footprint would straddle the boundary.
        config = SimulationConfig(
            seed=6, cache_capacity_bytes=20_000_000, split_small_object_cache=False
        )
        simulator = CdnSimulator(profiles=(profile_v2(),), config=config)
        simulator.warm([[image, video1, video2]])
        for edge in simulator.edges.values():
            (cache,) = edge.caches()
            keys = set(cache.keys())
            assert "img" in keys or "img#c0" in keys
            assert {f"vid1#c{i}" for i in range(5)} <= keys
            # Not one chunk of the straddling object was admitted.
            assert not any(key.startswith("vid2") for key in keys)


class TestConfigVariants:
    def _run(self, config: SimulationConfig) -> list:
        generator = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=5)
        workload = generator.generate_site(profile_v2())
        simulator = CdnSimulator(profiles=(profile_v2(),), config=config)
        return list(simulator.run(iter(workload.requests[:3000])))

    def test_unified_cache_mode(self):
        records = self._run(SimulationConfig(seed=1, split_small_object_cache=False))
        assert records

    def test_all_policies_run(self):
        for policy in ("lru", "fifo", "lfu", "slru", "gdsf"):
            records = self._run(SimulationConfig(seed=1, cache_policy=policy))
            assert records

    def test_zero_churn(self):
        records = self._run(SimulationConfig(seed=1, background_churn_per_day=0.0))
        assert records

    def test_incognito_effect_on_304(self):
        """With local serving disabled, non-incognito users revalidate more."""
        config_reval = SimulationConfig(seed=2, browser_local_serve_prob=0.0)
        records = self._run(config_reval)
        conditional = sum(r.status_code == 304 for r in records)
        config_local = SimulationConfig(seed=2, browser_local_serve_prob=1.0)
        records_local = self._run(config_local)
        conditional_local = sum(r.status_code == 304 for r in records_local)
        assert conditional > conditional_local

    def test_determinism(self):
        a = self._run(SimulationConfig(seed=3))
        b = self._run(SimulationConfig(seed=3))
        assert a == b
