"""Tests for the streaming playback model."""

from __future__ import annotations

import pytest

from repro.cdn.playback import PlaybackModel
from repro.errors import CdnError
from repro.stats.sampling import make_rng
from repro.types import ContentCategory, TrendClass
from repro.workload.catalog import ContentObject


def make_video(size=20_000_000) -> ContentObject:
    return ContentObject(
        object_id="vid-1", site="V-1", category=ContentCategory.VIDEO, extension="mp4",
        size_bytes=size, birth_time=0.0, trend=TrendClass.DIURNAL, popularity_weight=1.0,
    )


def make_image() -> ContentObject:
    return ContentObject(
        object_id="img-1", site="P-1", category=ContentCategory.IMAGE, extension="jpg",
        size_bytes=100_000, birth_time=0.0, trend=TrendClass.DIURNAL, popularity_weight=1.0,
    )


class TestPlaybackModel:
    def test_parameter_validation(self):
        with pytest.raises(CdnError):
            PlaybackModel(segment_bytes=0)
        with pytest.raises(CdnError):
            PlaybackModel(abandon_prob=0.0)
        with pytest.raises(CdnError):
            PlaybackModel(seek_prob=1.0)
        with pytest.raises(CdnError):
            PlaybackModel(max_segments=0)

    def test_images_not_streamable(self):
        model = PlaybackModel()
        assert not model.is_streamable(make_image())
        segments = model.viewing(make_image(), make_rng(0))
        assert len(segments) == 1
        assert segments[0].intent.kind == "full"

    def test_small_video_downloads_whole(self):
        model = PlaybackModel(segment_bytes=5_000_000)
        small = make_video(size=1_000_000)
        assert not model.is_streamable(small)

    def test_first_segment_always_downloaded(self):
        model = PlaybackModel(abandon_prob=0.99)
        segments = model.viewing(make_video(), make_rng(1))
        assert len(segments) >= 1
        assert segments[0].intent.range_start == 0

    def test_segments_within_object_bounds(self):
        model = PlaybackModel(segment_bytes=3_000_000)
        video = make_video(size=10_000_000)
        for seed in range(30):
            for segment in model.viewing(video, make_rng(seed)):
                intent = segment.intent
                assert 0 <= intent.range_start < video.size_bytes
                assert intent.range_start + intent.range_length <= video.size_bytes

    def test_sequential_without_seeks(self):
        model = PlaybackModel(segment_bytes=1_000_000, abandon_prob=0.01, seek_prob=0.0)
        video = make_video(size=5_000_000)
        segments = model.viewing(video, make_rng(2))
        starts = [s.intent.range_start for s in segments]
        assert starts == sorted(starts)
        assert starts == [i * 1_000_000 for i in range(len(starts))]

    def test_seeks_jump_forward(self):
        model = PlaybackModel(segment_bytes=1_000_000, abandon_prob=0.01, seek_prob=0.9)
        video = make_video(size=50_000_000)
        segments = model.viewing(video, make_rng(3))
        starts = [s.intent.range_start for s in segments]
        assert starts == sorted(starts)  # seeks only move forward

    def test_abandonment_shortens_viewings(self):
        video = make_video(size=100_000_000)
        sticky = PlaybackModel(segment_bytes=1_000_000, abandon_prob=0.02, seek_prob=0.0)
        flighty = PlaybackModel(segment_bytes=1_000_000, abandon_prob=0.5, seek_prob=0.0)
        sticky_mean = sum(len(sticky.viewing(video, make_rng(s))) for s in range(40)) / 40
        flighty_mean = sum(len(flighty.viewing(video, make_rng(s))) for s in range(40)) / 40
        assert flighty_mean < sticky_mean

    def test_offsets_increase_with_playback(self):
        model = PlaybackModel(segment_bytes=1_000_000, abandon_prob=0.01, segment_duration_s=8.0)
        segments = model.viewing(make_video(size=10_000_000), make_rng(4))
        offsets = [s.offset_seconds for s in segments]
        assert offsets == sorted(offsets)
        if len(offsets) > 1:
            assert offsets[1] - offsets[0] == pytest.approx(8.0)

    def test_max_segments_cap(self):
        model = PlaybackModel(segment_bytes=1_000, abandon_prob=0.001, max_segments=10)
        segments = model.viewing(make_video(size=100_000_000), make_rng(5))
        assert len(segments) <= 10

    def test_expected_watch_fraction(self):
        model = PlaybackModel(abandon_prob=0.25, max_segments=8)
        assert model.expected_watch_fraction() == pytest.approx(0.5)


class TestPlaybackSimulation:
    def test_playback_mode_multiplies_video_records(self):
        from repro.cdn.simulator import CdnSimulator, SimulationConfig
        from repro.workload.generator import WorkloadGenerator
        from repro.workload.profiles import profile_v1
        from repro.workload.scale import ScaleConfig

        generator = WorkloadGenerator(profiles=(profile_v1(),), scale=ScaleConfig.tiny(), seed=21)
        workload = generator.generate_site(profile_v1())
        sample = workload.requests[:2000]

        def run(playback: bool):
            simulator = CdnSimulator(
                profiles=(profile_v1(),),
                config=SimulationConfig(seed=22, playback_mode=playback),
            )
            return list(simulator.run(iter(sample)))

        plain = run(False)
        streamed = run(True)
        assert len(streamed) > len(plain)
        share_206 = sum(r.status_code == 206 for r in streamed) / len(streamed)
        assert share_206 > 0.5  # segment downloads dominate in playback mode

    def test_playback_records_are_valid(self):
        from repro.cdn.simulator import CdnSimulator, SimulationConfig
        from repro.workload.generator import WorkloadGenerator
        from repro.workload.profiles import profile_v1
        from repro.workload.scale import ScaleConfig

        generator = WorkloadGenerator(profiles=(profile_v1(),), scale=ScaleConfig.tiny(), seed=21)
        workload = generator.generate_site(profile_v1())
        simulator = CdnSimulator(
            profiles=(profile_v1(),), config=SimulationConfig(seed=22, playback_mode=True)
        )
        records = list(simulator.run(iter(workload.requests[:500])))
        assert records
        assert simulator.metrics.total_requests == len(records)
        for record in records:
            assert record.status_code in (200, 204, 206, 304, 403, 416)
