"""Behavioural tests for each cache replacement policy."""

from __future__ import annotations

import pytest

from repro.cdn.cache import Cache
from repro.cdn.policies import (
    FifoPolicy,
    GdsfPolicy,
    LfuPolicy,
    LruPolicy,
    SlruPolicy,
    make_policy,
    policy_names,
)
from repro.errors import CachePolicyError


class TestFactory:
    def test_all_registered_names_construct(self):
        for name in policy_names():
            policy = make_policy(name)
            assert policy.name == name

    def test_case_insensitive(self):
        assert make_policy("LRU").name == "lru"

    def test_unknown_rejected(self):
        with pytest.raises(CachePolicyError):
            make_policy("belady")


class TestLru:
    def test_victim_is_least_recently_used(self):
        policy = LruPolicy()
        policy.on_insert("a", 1, 0.0)
        policy.on_insert("b", 1, 1.0)
        policy.on_hit("a", 2.0)
        assert policy.victim() == "b"


class TestFifo:
    def test_hits_do_not_refresh(self):
        policy = FifoPolicy()
        policy.on_insert("a", 1, 0.0)
        policy.on_insert("b", 1, 1.0)
        policy.on_hit("a", 2.0)
        assert policy.victim() == "a"


class TestLfu:
    def test_victim_is_least_frequent(self):
        policy = LfuPolicy()
        for key in ("a", "b"):
            policy.on_insert(key, 1, 0.0)
        policy.on_hit("a", 1.0)
        policy.on_hit("a", 2.0)
        policy.on_hit("b", 3.0)
        assert policy.victim() == "b"

    def test_tie_breaks_by_recency(self):
        policy = LfuPolicy()
        policy.on_insert("a", 1, 0.0)
        policy.on_insert("b", 1, 1.0)
        assert policy.victim() == "a"  # same count, older touch

    def test_empty_victim_rejected(self):
        with pytest.raises(CachePolicyError):
            LfuPolicy().victim()

    def test_lazy_heap_handles_eviction(self):
        policy = LfuPolicy()
        policy.on_insert("a", 1, 0.0)
        policy.on_insert("b", 1, 1.0)
        policy.on_hit("a", 2.0)
        policy.on_evict("b")
        assert policy.victim() == "a"


class TestSlru:
    def test_protected_fraction_bounds(self):
        with pytest.raises(CachePolicyError):
            SlruPolicy(protected_fraction=0.0)

    def test_one_hit_wonder_evicted_before_proven_key(self):
        policy = SlruPolicy()
        policy.on_insert("proven", 1, 0.0)
        policy.on_hit("proven", 1.0)       # promoted to protected
        policy.on_insert("wonder", 1, 2.0)  # probation
        assert policy.victim() == "wonder"

    def test_falls_back_to_protected_when_probation_empty(self):
        policy = SlruPolicy()
        policy.on_insert("a", 1, 0.0)
        policy.on_hit("a", 1.0)
        assert policy.victim() == "a"

    def test_protected_overflow_demotes(self):
        policy = SlruPolicy(protected_fraction=0.5)
        for i, key in enumerate(("a", "b", "c", "d")):
            policy.on_insert(key, 1, float(i))
        policy.on_hit("a", 10.0)
        policy.on_hit("b", 11.0)
        policy.on_hit("c", 12.0)  # protected limit 2 -> a demoted
        # All keys still tracked.
        assert len(policy) == 4


class TestGdsf:
    def test_prefers_evicting_large_cold_objects(self):
        policy = GdsfPolicy()
        policy.on_insert("small", 10, 0.0)
        policy.on_insert("large", 10_000, 1.0)
        assert policy.victim() == "large"

    def test_frequency_rescues_large_objects(self):
        policy = GdsfPolicy()
        policy.on_insert("small", 10, 0.0)
        policy.on_insert("large", 20, 1.0)
        for t in range(2, 12):
            policy.on_hit("large", float(t))
        assert policy.victim() == "small"

    def test_floor_ages_resident_entries(self):
        cache = Cache(capacity_bytes=100, policy=GdsfPolicy())
        # Fill with one old popular entry and churn many cold ones through.
        cache.insert("old", 50, 0.0)
        cache.lookup("old", 1.0)
        for i in range(30):
            cache.insert(f"cold{i}", 40, float(i + 2))
        # The floor has risen past the old entry's static priority, so churn
        # eventually displaces even the once-popular key.
        assert cache.used_bytes <= 100

    def test_empty_victim_rejected(self):
        with pytest.raises(CachePolicyError):
            GdsfPolicy().victim()
