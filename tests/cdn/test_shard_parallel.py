"""Shard-parallel simulation equivalence: bit-identical output, merged metrics.

The sharded simulator's contract (mirroring
``tests/core/test_streaming_equivalence.py`` for the ingest engines):
``run_batches(workers=N)`` must produce *exactly* the record stream of the
sequential path — every ``LogRecord`` field, in the same global order —
for any worker count and batch size, and the merged
``SimulationMetrics`` / ``CacheStats`` / origin / push / proxy counters
must match the sequential run's exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdn.simulator import CdnSimulator, SimulationConfig
from repro.stats.sampling import counter_rng
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import profile_v1, profile_v2
from repro.workload.scale import ScaleConfig

SEED = 11
N_REQUESTS = 2500


@pytest.fixture(scope="module")
def workload():
    """Two sites' merged, id-stamped request stream plus their catalogs."""
    profiles = (profile_v1(), profile_v2())
    generator = WorkloadGenerator(profiles=profiles, scale=ScaleConfig.tiny(), seed=SEED)
    workloads = generator.generate_all()
    requests = []
    for request in generator.merged_requests(workloads):
        requests.append(request)
        if len(requests) >= N_REQUESTS:
            break
    catalogs = [w.catalog for w in workloads.values()]
    return profiles, requests, catalogs


def _simulator(profiles, catalogs, **overrides) -> CdnSimulator:
    config = SimulationConfig(seed=SEED + 1, cache_capacity_bytes=2_000_000_000, **overrides)
    simulator = CdnSimulator(profiles=profiles, config=config)
    simulator.warm(catalogs)
    return simulator


def _run_sequential(profiles, requests, catalogs, **overrides):
    simulator = _simulator(profiles, catalogs, **overrides)
    records = list(simulator.run(iter(requests)))
    return simulator, records


def _run_batched(
    profiles, requests, catalogs, workers, batch_size, queue_depth=None, chunked=None, **overrides
):
    simulator = _simulator(profiles, catalogs, **overrides)
    if chunked is not None:
        source = iter([requests[i : i + chunked] for i in range(0, len(requests), chunked)])
    else:
        source = iter(requests)
    batches = list(
        simulator.run_batches(
            source, batch_size=batch_size, workers=workers, queue_depth=queue_depth
        )
    )
    records = [record for batch in batches for record in batch.iter_records()]
    return simulator, records, batches


@pytest.fixture(scope="module")
def reference(workload):
    """The sequential run every parallel configuration must reproduce."""
    profiles, requests, catalogs = workload
    return _run_sequential(profiles, requests, catalogs)


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    @pytest.mark.parametrize("batch_size", [1, 64, 10**9])
    def test_run_batches_matches_sequential(self, workload, reference, workers, batch_size):
        profiles, requests, catalogs = workload
        _, expected = reference
        _, records, batches = _run_batched(
            profiles, requests, catalogs, workers=workers, batch_size=batch_size
        )
        assert len(records) == len(expected)
        assert records == expected  # every LogRecord field, field by field
        if batch_size < 10**9:
            assert all(len(batch) <= batch_size for batch in batches)

    def test_global_order_is_sequential_order(self, workload, reference):
        profiles, requests, catalogs = workload
        _, expected = reference
        _, records, _ = _run_batched(profiles, requests, catalogs, workers=3, batch_size=128)
        assert [r.timestamp for r in records] == [r.timestamp for r in expected]
        assert [r.timestamp for r in records] == sorted(r.timestamp for r in records)

    def test_workers_env_variable(self, workload, reference, monkeypatch):
        from repro.cdn import simulator as sim_module

        monkeypatch.setenv(sim_module.WORKERS_ENV, "2")
        profiles, requests, catalogs = workload
        _, expected = reference
        simulator, records, _ = _run_batched(
            profiles, requests, catalogs, workers=None, batch_size=256
        )
        assert records == expected
        assert simulator.sim_stats is not None and simulator.sim_stats.workers == 2


class TestMergedMetrics:
    def test_metrics_match_sequential_exactly(self, workload, reference):
        profiles, requests, catalogs = workload
        seq_sim, _ = reference
        par_sim, _, _ = _run_batched(profiles, requests, catalogs, workers=4, batch_size=512)
        assert par_sim.metrics == seq_sim.metrics  # includes float latency totals
        assert par_sim.cache_stats() == seq_sim.cache_stats()
        assert par_sim.origin == seq_sim.origin

    def test_per_edge_cache_state_matches(self, workload, reference):
        profiles, requests, catalogs = workload
        seq_sim, _ = reference
        par_sim, _, _ = _run_batched(profiles, requests, catalogs, workers=2, batch_size=256)
        for dc_id, seq_edge in seq_sim.edges.items():
            par_edge = par_sim.edges[dc_id]
            for seq_cache, par_cache in zip(seq_edge.caches(), par_edge.caches()):
                assert seq_cache.stats == par_cache.stats
                assert seq_cache.used_bytes == par_cache.used_bytes
                assert len(seq_cache) == len(par_cache)

    def test_push_and_proxy_stats_match(self, workload):
        profiles, requests, catalogs = workload

        def run(workers):
            simulator = _simulator(profiles, catalogs, isp_proxies=True)
            simulator.enable_push(catalogs)
            batches = list(simulator.run_batches(iter(requests), batch_size=512, workers=workers))
            records = [record for batch in batches for record in batch.iter_records()]
            return simulator, records

        seq_sim, seq_records = run(workers=1)
        par_sim, par_records = run(workers=3)
        assert par_records == seq_records
        assert par_sim.push_stats == seq_sim.push_stats
        seq_proxies, par_proxies = seq_sim.proxies, par_sim.proxies
        assert (seq_proxies.total_hits, seq_proxies.total_lookups) == (
            par_proxies.total_hits,
            par_proxies.total_lookups,
        )

    def test_playback_mode_matches(self, workload):
        profiles, requests, catalogs = workload
        seq_sim, seq_records = _run_sequential(
            profiles, requests[:800], catalogs, playback_mode=True
        )
        par_sim, par_records, _ = _run_batched(
            profiles, requests[:800], catalogs, workers=2, batch_size=64, playback_mode=True
        )
        assert par_records == seq_records
        assert par_sim.metrics == seq_sim.metrics


class TestShardsPerDc:
    def test_partitioned_dc_still_bit_identical(self, workload):
        profiles, requests, catalogs = workload
        seq_sim, seq_records = _run_sequential(profiles, requests, catalogs, shards_per_dc=2)
        par_sim, par_records, _ = _run_batched(
            profiles, requests, catalogs, workers=5, batch_size=256, shards_per_dc=2
        )
        assert par_records == seq_records
        assert par_sim.metrics == seq_sim.metrics
        assert par_sim.cache_stats() == seq_sim.cache_stats()

    def test_partition_count_validated(self):
        with pytest.raises(ValueError):
            CdnSimulator(config=SimulationConfig(shards_per_dc=0))


class TestSimStats:
    def test_stats_populated_after_exhaustion(self, workload):
        profiles, requests, catalogs = workload
        for workers in (1, 2):
            simulator, records, _ = _run_batched(
                profiles, requests, catalogs, workers=workers, batch_size=512
            )
            stats = simulator.sim_stats
            assert stats is not None
            assert stats.requests == len(requests)
            assert stats.records == len(records)
            assert sum(s.records for s in stats.shards) == stats.records
            assert sum(s.queue_depth for s in stats.shards) == stats.requests
            assert stats.wall_seconds > 0
            assert stats.records_per_sec > 0
            assert stats.ideal_speedup >= 1.0


class TestWarmDeterminism:
    def test_warm_identical_across_topology_sizes(self, workload):
        """The warm admission draw is keyed per object, so the set of
        objects an edge warms with cannot depend on how many other edges
        exist or on edge iteration order."""
        from repro.cdn.geo import DataCenter, Topology
        from repro.types import Continent

        profiles, _, catalogs = workload
        full = _simulator(profiles, catalogs)
        solo_topology = Topology(
            datacenters=(
                DataCenter(
                    dc_id="dc-north_america",
                    continent=Continent.NORTH_AMERICA,
                    cache_capacity_bytes=2_000_000_000,
                ),
            )
        )
        solo = CdnSimulator(
            profiles=profiles,
            topology=solo_topology,
            config=SimulationConfig(seed=SEED + 1, cache_capacity_bytes=2_000_000_000),
        )
        solo.warm(catalogs)
        full_edge = full.edges["dc-north_america"]
        solo_edge = solo.edges["dc-north_america"]
        for full_cache, solo_cache in zip(full_edge.caches(), solo_edge.caches()):
            assert set(full_cache.keys()) == set(solo_cache.keys())

    def test_warm_repeatable(self, workload):
        profiles, _, catalogs = workload
        first = _simulator(profiles, catalogs)
        second = _simulator(profiles, catalogs)
        for edge_a, edge_b in zip(first.edges.values(), second.edges.values()):
            for cache_a, cache_b in zip(edge_a.caches(), edge_b.caches()):
                assert set(cache_a.keys()) == set(cache_b.keys())


class TestBrowserEviction:
    def test_cap_bounds_tracked_browsers(self, workload, reference):
        profiles, requests, catalogs = workload
        capped, records = _run_sequential(
            profiles, requests, catalogs, max_tracked_browsers=5
        )
        assert capped.metrics.evicted_browsers > 0
        for shard in capped._shards.values():
            assert len(shard.browsers) <= 5
        # The uncapped reference saw no evictions.
        assert reference[0].metrics.evicted_browsers == 0

    def test_cap_still_bit_identical_across_workers(self, workload):
        profiles, requests, catalogs = workload
        _, seq_records = _run_sequential(
            profiles, requests, catalogs, max_tracked_browsers=5
        )
        par_sim, par_records, _ = _run_batched(
            profiles, requests, catalogs, workers=3, batch_size=128, max_tracked_browsers=5
        )
        assert par_records == seq_records
        assert par_sim.metrics.evicted_browsers > 0


class TestCounterRng:
    def test_streams_are_order_independent(self):
        a_then_b = (counter_rng(3, "request", 1).random(), counter_rng(3, "request", 2).random())
        b_then_a = (counter_rng(3, "request", 2).random(), counter_rng(3, "request", 1).random())
        assert a_then_b == tuple(reversed(b_then_a))

    def test_streams_differ_by_key(self):
        assert counter_rng(3, "request", 1).random() != counter_rng(3, "request", 2).random()
        assert counter_rng(3, "request", 1).random() != counter_rng(4, "request", 1).random()
        assert counter_rng(3, "request", 1).random() != counter_rng(3, "warm", 1).random()


class TestStreamingDispatch:
    """The producer/consumer dispatcher: bounded windows, identical output."""

    @pytest.mark.parametrize("workers", [2, 5])
    @pytest.mark.parametrize("queue_depth", [1, 17, 100_000])
    def test_queue_depth_grid_bit_identical(self, workload, workers, queue_depth):
        profiles, requests, catalogs = workload
        prefix = requests[: 400 if queue_depth == 1 else 1200]
        _, expected = _run_sequential(profiles, prefix, catalogs)
        # batch_size 64 > queue_depth 1/17 exercises a dispatch window
        # smaller than one output batch.
        _, records, _ = _run_batched(
            profiles, prefix, catalogs, workers=workers, batch_size=64, queue_depth=queue_depth
        )
        assert records == expected

    def test_prebatched_input_bit_identical(self, workload, reference):
        profiles, requests, catalogs = workload
        _, expected = reference
        _, records, _ = _run_batched(
            profiles, requests, catalogs, workers=3, batch_size=256, queue_depth=50, chunked=100
        )
        assert records == expected

    def test_peak_resident_bounded_by_queue_depth(self, workload, reference):
        profiles, requests, catalogs = workload
        _, expected = reference
        simulator, records, _ = _run_batched(
            profiles, requests, catalogs, workers=3, batch_size=256, queue_depth=32, chunked=100
        )
        assert records == expected
        stats = simulator.sim_stats
        n_shards = len(simulator._shards)
        # At most one staged producer block plus a full window per shard.
        assert 0 < stats.peak_resident_requests <= 32 * n_shards + 100
        assert stats.peak_resident_requests < len(requests)
        assert all(shard.queue_peak <= 32 for shard in stats.shards)
        assert any(shard.queue_peak > 0 for shard in stats.shards)
        assert stats.generate_seconds > 0
        assert 0.0 <= stats.overlap_fraction <= 1.0
        # The big-window run keeps everything in flight at once.
        big, _, _ = _run_batched(
            profiles, requests, catalogs, workers=3, batch_size=256, queue_depth=100_000
        )
        assert stats.peak_resident_requests < big.sim_stats.peak_resident_requests

    def test_queue_depth_env_variable(self, workload, monkeypatch):
        from repro.cdn import simulator as sim_module

        monkeypatch.setenv(sim_module.QUEUE_DEPTH_ENV, "41")
        profiles, requests, catalogs = workload
        simulator, _, _ = _run_batched(
            profiles, requests[:600], catalogs, workers=2, batch_size=128
        )
        assert all(shard.queue_peak <= 41 for shard in simulator.sim_stats.shards)

    def test_queue_depth_validated(self, workload):
        profiles, requests, catalogs = workload
        simulator = _simulator(profiles, catalogs)
        with pytest.raises(ValueError):
            simulator.run_batches(iter(requests), workers=2, queue_depth=0)


class TestStaleStats:
    def test_abandoned_iterator_leaves_stats_none(self, workload):
        profiles, requests, catalogs = workload
        for workers in (1, 3):
            simulator = _simulator(profiles, catalogs)
            full = list(simulator.run_batches(iter(requests), batch_size=128, workers=workers))
            assert full and simulator.sim_stats is not None
            previous = simulator.sim_stats
            iterator = simulator.run_batches(iter(requests), batch_size=128, workers=workers)
            # The new run resets the stats before producing anything …
            assert simulator.sim_stats is None
            next(iterator)
            iterator.close()
            # … and an abandoned iterator never resurrects the old run's.
            assert simulator.sim_stats is None
            assert previous is not simulator.sim_stats


class TestWorkerFailure:
    def _expect_consistent_failure(self, workload, env_name, monkeypatch):
        from repro.errors import SimulationError

        profiles, requests, catalogs = workload
        simulator = _simulator(profiles, catalogs)
        victim = requests[120]
        monkeypatch.setenv(env_name, str(victim.request_id))
        before = dict(simulator._shards)
        with pytest.raises(SimulationError) as excinfo:
            list(simulator.run_batches(iter(requests), batch_size=128, workers=3, queue_depth=64))
        # No shard state was adopted: every shard object is the parent's
        # own pre-run instance, so a retry starts from consistent state.
        assert all(simulator._shards[key] is before[key] for key in before)
        assert simulator.sim_stats is None
        assert "no shard state was adopted" in str(excinfo.value)
        return simulator, victim, str(excinfo.value)

    def test_raising_worker_wrapped_named_and_consistent(self, workload, monkeypatch):
        from repro.cdn import simulator as sim_module

        simulator, victim, message = self._expect_consistent_failure(
            workload, sim_module._FAIL_RID_ENV, monkeypatch
        )
        shard_id = simulator._shards[simulator._shard_key(victim.user)].shard_id
        assert shard_id in message
        assert "injected worker failure" in message

    def test_killed_worker_named_and_consistent(self, workload, monkeypatch):
        from repro.cdn import simulator as sim_module

        simulator, victim, message = self._expect_consistent_failure(
            workload, sim_module._KILL_RID_ENV, monkeypatch
        )
        assert "died" in message
        shard_id = simulator._shards[simulator._shard_key(victim.user)].shard_id
        assert shard_id in message


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_hypothesis_frontier_merge_order(data):
    """Property: for any shard assignment, chunking, and FIFO-per-shard
    acknowledgement interleaving, the frontier merge emits every record in
    global request-id order, never past the emission bound, with a
    request's multi-record run kept contiguous."""
    from repro.cdn.simulator import _FrontierMerger, _ShardChannel

    n_shards = data.draw(st.integers(1, 4))
    n_rids = data.draw(st.integers(1, 50))
    keys = [("dc", index) for index in range(n_shards)]
    shard_of = {
        rid: keys[data.draw(st.integers(0, n_shards - 1))] for rid in range(n_rids)
    }
    tokens_of = {rid: data.draw(st.integers(1, 3)) for rid in range(n_rids)}

    channels = {key: _ShardChannel(key, 0) for key in keys}
    merger = _FrontierMerger(keys)
    produced_through = n_rids - 1

    # Chunk each shard's rid sequence (order preserved) and dispatch.
    chunks = {key: [] for key in keys}
    for key in keys:
        rids = [rid for rid in range(n_rids) if shard_of[rid] is key]
        while rids:
            take = data.draw(st.integers(1, len(rids)))
            chunk = rids[:take]
            rids = rids[take:]
            channels[key].dispatch(chunk[0], len(chunk))
            chunks[key].append(chunk)

    def bound():
        return min(channel.frontier(produced_through) for channel in channels.values())

    emitted = []
    pending_keys = [key for key in keys if chunks[key]]
    while pending_keys:
        key = data.draw(st.sampled_from(pending_keys))
        chunk = chunks[key].pop(0)  # FIFO within a shard, any order across
        seq = channels[key].pending[0][0]
        channels[key].ack(seq, len(chunk))
        rids = [rid for rid in chunk for _ in range(tokens_of[rid])]
        merger.push(key, rids, ((rid, t) for t, rid in enumerate(rids)))
        head = bound()
        for record in merger.emit(head):
            assert record[0] <= head  # never emits past the bound
            emitted.append(record)
        pending_keys = [key for key in keys if chunks[key]]

    emitted.extend(merger.emit(produced_through))
    assert merger.buffered == 0
    expected = [
        (rid, token)
        for rid in range(n_rids)
        for token in range(tokens_of[rid])
    ]
    # Global id order with each rid's records contiguous and in order —
    # but token indices restart per chunk, so compare (rid, rank) shape.
    assert [record[0] for record in emitted] == [pair[0] for pair in expected]
    last_token: dict[int, int] = {}
    for rid, token in emitted:
        if rid in last_token:
            assert token == last_token[rid] + 1  # within-request order kept
        last_token[rid] = token


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
)
@given(
    workers=st.sampled_from([1, 2, 7]),
    batch_size=st.sampled_from([1, 64, 10**9]),
    slice_len=st.sampled_from([150, 400]),
)
def test_hypothesis_grid_bit_identical(workload, workers, batch_size, slice_len):
    """Property: any (workers, batch_size, stream prefix) combination
    reproduces the sequential records exactly."""
    profiles, requests, catalogs = workload
    prefix = requests[:slice_len]
    _, expected = _run_sequential(profiles, prefix, catalogs)
    _, records, _ = _run_batched(
        profiles, prefix, catalogs, workers=workers, batch_size=batch_size
    )
    assert records == expected
