"""Shard-parallel simulation equivalence: bit-identical output, merged metrics.

The sharded simulator's contract (mirroring
``tests/core/test_streaming_equivalence.py`` for the ingest engines):
``run_batches(workers=N)`` must produce *exactly* the record stream of the
sequential path — every ``LogRecord`` field, in the same global order —
for any worker count and batch size, and the merged
``SimulationMetrics`` / ``CacheStats`` / origin / push / proxy counters
must match the sequential run's exactly.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cdn.simulator import CdnSimulator, SimulationConfig
from repro.stats.sampling import counter_rng
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import profile_v1, profile_v2
from repro.workload.scale import ScaleConfig

SEED = 11
N_REQUESTS = 2500


@pytest.fixture(scope="module")
def workload():
    """Two sites' merged, id-stamped request stream plus their catalogs."""
    profiles = (profile_v1(), profile_v2())
    generator = WorkloadGenerator(profiles=profiles, scale=ScaleConfig.tiny(), seed=SEED)
    workloads = generator.generate_all()
    requests = []
    for request in generator.merged_requests(workloads):
        requests.append(request)
        if len(requests) >= N_REQUESTS:
            break
    catalogs = [w.catalog for w in workloads.values()]
    return profiles, requests, catalogs


def _simulator(profiles, catalogs, **overrides) -> CdnSimulator:
    config = SimulationConfig(seed=SEED + 1, cache_capacity_bytes=2_000_000_000, **overrides)
    simulator = CdnSimulator(profiles=profiles, config=config)
    simulator.warm(catalogs)
    return simulator


def _run_sequential(profiles, requests, catalogs, **overrides):
    simulator = _simulator(profiles, catalogs, **overrides)
    records = list(simulator.run(iter(requests)))
    return simulator, records


def _run_batched(profiles, requests, catalogs, workers, batch_size, **overrides):
    simulator = _simulator(profiles, catalogs, **overrides)
    batches = list(simulator.run_batches(iter(requests), batch_size=batch_size, workers=workers))
    records = [record for batch in batches for record in batch.iter_records()]
    return simulator, records, batches


@pytest.fixture(scope="module")
def reference(workload):
    """The sequential run every parallel configuration must reproduce."""
    profiles, requests, catalogs = workload
    return _run_sequential(profiles, requests, catalogs)


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 7])
    @pytest.mark.parametrize("batch_size", [1, 64, 10**9])
    def test_run_batches_matches_sequential(self, workload, reference, workers, batch_size):
        profiles, requests, catalogs = workload
        _, expected = reference
        _, records, batches = _run_batched(
            profiles, requests, catalogs, workers=workers, batch_size=batch_size
        )
        assert len(records) == len(expected)
        assert records == expected  # every LogRecord field, field by field
        if batch_size < 10**9:
            assert all(len(batch) <= batch_size for batch in batches)

    def test_global_order_is_sequential_order(self, workload, reference):
        profiles, requests, catalogs = workload
        _, expected = reference
        _, records, _ = _run_batched(profiles, requests, catalogs, workers=3, batch_size=128)
        assert [r.timestamp for r in records] == [r.timestamp for r in expected]
        assert [r.timestamp for r in records] == sorted(r.timestamp for r in records)

    def test_workers_env_variable(self, workload, reference, monkeypatch):
        from repro.cdn import simulator as sim_module

        monkeypatch.setenv(sim_module.WORKERS_ENV, "2")
        profiles, requests, catalogs = workload
        _, expected = reference
        simulator, records, _ = _run_batched(
            profiles, requests, catalogs, workers=None, batch_size=256
        )
        assert records == expected
        assert simulator.sim_stats is not None and simulator.sim_stats.workers == 2


class TestMergedMetrics:
    def test_metrics_match_sequential_exactly(self, workload, reference):
        profiles, requests, catalogs = workload
        seq_sim, _ = reference
        par_sim, _, _ = _run_batched(profiles, requests, catalogs, workers=4, batch_size=512)
        assert par_sim.metrics == seq_sim.metrics  # includes float latency totals
        assert par_sim.cache_stats() == seq_sim.cache_stats()
        assert par_sim.origin == seq_sim.origin

    def test_per_edge_cache_state_matches(self, workload, reference):
        profiles, requests, catalogs = workload
        seq_sim, _ = reference
        par_sim, _, _ = _run_batched(profiles, requests, catalogs, workers=2, batch_size=256)
        for dc_id, seq_edge in seq_sim.edges.items():
            par_edge = par_sim.edges[dc_id]
            for seq_cache, par_cache in zip(seq_edge.caches(), par_edge.caches()):
                assert seq_cache.stats == par_cache.stats
                assert seq_cache.used_bytes == par_cache.used_bytes
                assert len(seq_cache) == len(par_cache)

    def test_push_and_proxy_stats_match(self, workload):
        profiles, requests, catalogs = workload

        def run(workers):
            simulator = _simulator(profiles, catalogs, isp_proxies=True)
            simulator.enable_push(catalogs)
            batches = list(simulator.run_batches(iter(requests), batch_size=512, workers=workers))
            records = [record for batch in batches for record in batch.iter_records()]
            return simulator, records

        seq_sim, seq_records = run(workers=1)
        par_sim, par_records = run(workers=3)
        assert par_records == seq_records
        assert par_sim.push_stats == seq_sim.push_stats
        seq_proxies, par_proxies = seq_sim.proxies, par_sim.proxies
        assert (seq_proxies.total_hits, seq_proxies.total_lookups) == (
            par_proxies.total_hits,
            par_proxies.total_lookups,
        )

    def test_playback_mode_matches(self, workload):
        profiles, requests, catalogs = workload
        seq_sim, seq_records = _run_sequential(
            profiles, requests[:800], catalogs, playback_mode=True
        )
        par_sim, par_records, _ = _run_batched(
            profiles, requests[:800], catalogs, workers=2, batch_size=64, playback_mode=True
        )
        assert par_records == seq_records
        assert par_sim.metrics == seq_sim.metrics


class TestShardsPerDc:
    def test_partitioned_dc_still_bit_identical(self, workload):
        profiles, requests, catalogs = workload
        seq_sim, seq_records = _run_sequential(profiles, requests, catalogs, shards_per_dc=2)
        par_sim, par_records, _ = _run_batched(
            profiles, requests, catalogs, workers=5, batch_size=256, shards_per_dc=2
        )
        assert par_records == seq_records
        assert par_sim.metrics == seq_sim.metrics
        assert par_sim.cache_stats() == seq_sim.cache_stats()

    def test_partition_count_validated(self):
        with pytest.raises(ValueError):
            CdnSimulator(config=SimulationConfig(shards_per_dc=0))


class TestSimStats:
    def test_stats_populated_after_exhaustion(self, workload):
        profiles, requests, catalogs = workload
        for workers in (1, 2):
            simulator, records, _ = _run_batched(
                profiles, requests, catalogs, workers=workers, batch_size=512
            )
            stats = simulator.sim_stats
            assert stats is not None
            assert stats.requests == len(requests)
            assert stats.records == len(records)
            assert sum(s.records for s in stats.shards) == stats.records
            assert sum(s.queue_depth for s in stats.shards) == stats.requests
            assert stats.wall_seconds > 0
            assert stats.records_per_sec > 0
            assert stats.ideal_speedup >= 1.0


class TestWarmDeterminism:
    def test_warm_identical_across_topology_sizes(self, workload):
        """The warm admission draw is keyed per object, so the set of
        objects an edge warms with cannot depend on how many other edges
        exist or on edge iteration order."""
        from repro.cdn.geo import DataCenter, Topology
        from repro.types import Continent

        profiles, _, catalogs = workload
        full = _simulator(profiles, catalogs)
        solo_topology = Topology(
            datacenters=(
                DataCenter(
                    dc_id="dc-north_america",
                    continent=Continent.NORTH_AMERICA,
                    cache_capacity_bytes=2_000_000_000,
                ),
            )
        )
        solo = CdnSimulator(
            profiles=profiles,
            topology=solo_topology,
            config=SimulationConfig(seed=SEED + 1, cache_capacity_bytes=2_000_000_000),
        )
        solo.warm(catalogs)
        full_edge = full.edges["dc-north_america"]
        solo_edge = solo.edges["dc-north_america"]
        for full_cache, solo_cache in zip(full_edge.caches(), solo_edge.caches()):
            assert set(full_cache.keys()) == set(solo_cache.keys())

    def test_warm_repeatable(self, workload):
        profiles, _, catalogs = workload
        first = _simulator(profiles, catalogs)
        second = _simulator(profiles, catalogs)
        for edge_a, edge_b in zip(first.edges.values(), second.edges.values()):
            for cache_a, cache_b in zip(edge_a.caches(), edge_b.caches()):
                assert set(cache_a.keys()) == set(cache_b.keys())


class TestBrowserEviction:
    def test_cap_bounds_tracked_browsers(self, workload, reference):
        profiles, requests, catalogs = workload
        capped, records = _run_sequential(
            profiles, requests, catalogs, max_tracked_browsers=5
        )
        assert capped.metrics.evicted_browsers > 0
        for shard in capped._shards.values():
            assert len(shard.browsers) <= 5
        # The uncapped reference saw no evictions.
        assert reference[0].metrics.evicted_browsers == 0

    def test_cap_still_bit_identical_across_workers(self, workload):
        profiles, requests, catalogs = workload
        _, seq_records = _run_sequential(
            profiles, requests, catalogs, max_tracked_browsers=5
        )
        par_sim, par_records, _ = _run_batched(
            profiles, requests, catalogs, workers=3, batch_size=128, max_tracked_browsers=5
        )
        assert par_records == seq_records
        assert par_sim.metrics.evicted_browsers > 0


class TestCounterRng:
    def test_streams_are_order_independent(self):
        a_then_b = (counter_rng(3, "request", 1).random(), counter_rng(3, "request", 2).random())
        b_then_a = (counter_rng(3, "request", 2).random(), counter_rng(3, "request", 1).random())
        assert a_then_b == tuple(reversed(b_then_a))

    def test_streams_differ_by_key(self):
        assert counter_rng(3, "request", 1).random() != counter_rng(3, "request", 2).random()
        assert counter_rng(3, "request", 1).random() != counter_rng(4, "request", 1).random()
        assert counter_rng(3, "request", 1).random() != counter_rng(3, "warm", 1).random()


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture, HealthCheck.too_slow],
)
@given(
    workers=st.sampled_from([1, 2, 7]),
    batch_size=st.sampled_from([1, 64, 10**9]),
    slice_len=st.sampled_from([150, 400]),
)
def test_hypothesis_grid_bit_identical(workload, workers, batch_size, slice_len):
    """Property: any (workers, batch_size, stream prefix) combination
    reproduces the sequential records exactly."""
    profiles, requests, catalogs = workload
    prefix = requests[:slice_len]
    _, expected = _run_sequential(profiles, prefix, catalogs)
    _, records, _ = _run_batched(
        profiles, prefix, catalogs, workers=workers, batch_size=batch_size
    )
    assert records == expected
