"""Tests for the ISP proxy-cache layer and router failure injection."""

from __future__ import annotations

import pytest

from repro.cdn.proxy import IspProxyLayer, ProxyConfig
from repro.cdn.routing import Router
from repro.cdn.geo import DataCenter, Topology, default_datacenters
from repro.errors import CdnError, RoutingError
from repro.types import Continent, ContentCategory, DeviceType, TrendClass
from repro.workload.catalog import ContentObject
from repro.workload.population import User


def make_object(category=ContentCategory.IMAGE, size=100_000, object_id="img-1") -> ContentObject:
    ext = "jpg" if category is ContentCategory.IMAGE else "mp4"
    return ContentObject(
        object_id=object_id,
        site="P-1",
        category=category,
        extension=ext,
        size_bytes=size,
        birth_time=0.0,
        trend=TrendClass.DIURNAL,
        popularity_weight=1.0,
    )


def make_user(continent=Continent.EUROPE) -> User:
    return User(
        user_id="u1", site="P-1", device=DeviceType.DESKTOP, continent=continent,
        user_agent="UA", incognito=True, activity_weight=1.0, addiction_propensity=0.9,
    )


class TestIspProxyLayer:
    def test_capacity_validated(self):
        with pytest.raises(CdnError):
            IspProxyLayer(ProxyConfig(capacity_bytes=0))

    def test_one_cache_per_continent(self):
        layer = IspProxyLayer()
        assert set(layer.caches) == set(Continent)

    def test_miss_then_hit_after_admit(self):
        layer = IspProxyLayer()
        obj = make_object()
        assert not layer.serve_locally(Continent.EUROPE, obj, now=0.0)
        assert layer.admit(Continent.EUROPE, obj, now=0.0)
        assert layer.serve_locally(Continent.EUROPE, obj, now=1.0)

    def test_continents_isolated(self):
        layer = IspProxyLayer()
        obj = make_object()
        layer.admit(Continent.EUROPE, obj, now=0.0)
        assert not layer.serve_locally(Continent.ASIA, obj, now=1.0)

    def test_video_not_cached_by_default(self):
        layer = IspProxyLayer()
        video = make_object(ContentCategory.VIDEO, size=5_000_000, object_id="vid")
        assert not layer.cacheable(video)
        assert not layer.admit(Continent.EUROPE, video, now=0.0)

    def test_video_cacheable_when_enabled(self):
        layer = IspProxyLayer(ProxyConfig(cache_video=True, max_object_bytes=10_000_000))
        video = make_object(ContentCategory.VIDEO, size=5_000_000, object_id="vid")
        assert layer.cacheable(video)

    def test_oversized_objects_bypass(self):
        layer = IspProxyLayer(ProxyConfig(max_object_bytes=1_000))
        big = make_object(size=2_000)
        assert not layer.cacheable(big)

    def test_ttl_expiry(self):
        layer = IspProxyLayer(ProxyConfig(ttl_seconds=100.0))
        obj = make_object()
        layer.admit(Continent.EUROPE, obj, now=0.0)
        assert not layer.serve_locally(Continent.EUROPE, obj, now=200.0)

    def test_hit_ratio_accounting(self):
        layer = IspProxyLayer()
        obj = make_object()
        layer.serve_locally(Continent.EUROPE, obj, 0.0)   # miss
        layer.admit(Continent.EUROPE, obj, 0.0)
        layer.serve_locally(Continent.EUROPE, obj, 1.0)   # hit
        assert layer.total_lookups == 2
        assert layer.total_hits == 1
        assert layer.hit_ratio == pytest.approx(0.5)


class TestProxySimulatorIntegration:
    def test_proxy_absorbs_repeat_image_requests(self):
        from repro.cdn.simulator import CdnSimulator, SimulationConfig
        from repro.workload.generator import WorkloadGenerator
        from repro.workload.profiles import profile_p1
        from repro.workload.scale import ScaleConfig

        generator = WorkloadGenerator(profiles=(profile_p1(),), scale=ScaleConfig.tiny(), seed=9)
        workload = generator.generate_site(profile_p1())

        def run(proxies: bool) -> int:
            simulator = CdnSimulator(
                profiles=(profile_p1(),),
                config=SimulationConfig(seed=10, isp_proxies=proxies),
            )
            return sum(1 for _ in simulator.run(iter(workload.requests)))

        with_proxy = run(True)
        without_proxy = run(False)
        # The proxy serves part of the repeat traffic locally, so fewer
        # requests reach the CDN (and its logs).
        assert with_proxy < without_proxy


class TestRouterFailover:
    def test_mark_down_reroutes(self):
        router = Router(default_datacenters())
        user = make_user(Continent.EUROPE)
        assert router.route(user).continent is Continent.EUROPE
        router.mark_down("dc-europe")
        rerouted = router.route(user)
        assert rerouted.continent is not Continent.EUROPE
        assert "dc-europe" in router.down

    def test_mark_up_restores(self):
        router = Router(default_datacenters())
        router.mark_down("dc-europe")
        router.mark_up("dc-europe")
        assert router.route(make_user(Continent.EUROPE)).continent is Continent.EUROPE
        assert not router.down

    def test_unknown_dc_rejected(self):
        router = Router(default_datacenters())
        with pytest.raises(RoutingError):
            router.mark_down("dc-mars")

    def test_last_dc_cannot_fail(self):
        topology = Topology((DataCenter("only", Continent.EUROPE, 100),))
        router = Router(topology)
        with pytest.raises(RoutingError):
            router.mark_down("only")

    def test_failover_prefers_nearest_healthy(self):
        router = Router(default_datacenters())
        router.mark_down("dc-europe")
        # Europe's nearest healthy DC is North America (90ms) not Asia (160ms).
        assert router.route(make_user(Continent.EUROPE)).dc_id == "dc-north_america"

    def test_simulator_continues_through_failure(self):
        from repro.cdn.simulator import CdnSimulator, SimulationConfig
        from repro.workload.generator import WorkloadGenerator
        from repro.workload.profiles import profile_v1
        from repro.workload.scale import ScaleConfig

        generator = WorkloadGenerator(profiles=(profile_v1(),), scale=ScaleConfig.tiny(), seed=9)
        workload = generator.generate_site(profile_v1())
        simulator = CdnSimulator(profiles=(profile_v1(),), config=SimulationConfig(seed=10))
        half = len(workload.requests) // 2
        records = [r for r in simulator.run(iter(workload.requests[:half])) if r]
        simulator.router.mark_down("dc-europe")
        records += [r for r in simulator.run(iter(workload.requests[half:])) if r]
        assert records
        late_dcs = {r.datacenter for r in records[len(records) // 2 :]}
        assert "dc-europe" not in {r.datacenter for r in simulator.run(iter(workload.requests[half:]))}
