"""Tests for simulation metrics, including latency accounting."""

from __future__ import annotations

import pytest

from repro.cdn.metrics import SimulationMetrics, SiteMetrics
from repro.types import CacheStatus, ContentCategory


class TestSiteMetrics:
    def test_empty_defaults(self):
        metrics = SiteMetrics()
        assert metrics.hit_ratio == 0.0
        assert metrics.mean_latency_ms == 0.0


class TestSimulationMetrics:
    def test_record_accumulates(self):
        metrics = SimulationMetrics()
        metrics.record("V-1", ContentCategory.VIDEO, CacheStatus.HIT, 200, 1000, 0, latency_ms=10.0)
        metrics.record("V-1", ContentCategory.VIDEO, CacheStatus.MISS, 200, 1000, 1000, latency_ms=300.0)
        metrics.record("P-1", ContentCategory.IMAGE, CacheStatus.HIT, 304, 0, 0, latency_ms=10.0)
        site = metrics.sites["V-1"]
        assert site.requests == 2
        assert site.hits == 1
        assert site.hit_ratio == pytest.approx(0.5)
        assert site.bytes_from_origin == 1000
        assert site.mean_latency_ms == pytest.approx(155.0)
        assert metrics.total_requests == 3
        assert metrics.overall_hit_ratio == pytest.approx(2 / 3)
        assert metrics.overall_mean_latency_ms == pytest.approx((10 + 300 + 10) / 3)

    def test_status_code_totals(self):
        metrics = SimulationMetrics()
        metrics.record("V-1", ContentCategory.VIDEO, CacheStatus.HIT, 200, 1, 0)
        metrics.record("P-1", ContentCategory.IMAGE, CacheStatus.HIT, 200, 1, 0)
        metrics.record("P-1", ContentCategory.IMAGE, CacheStatus.MISS, 403, 0, 0)
        totals = metrics.status_code_totals()
        assert totals[200] == 2
        assert totals[403] == 1

    def test_empty_overall(self):
        metrics = SimulationMetrics()
        assert metrics.overall_hit_ratio == 0.0
        assert metrics.overall_mean_latency_ms == 0.0


class TestSimulatedLatency:
    def test_misses_cost_more_than_hits(self):
        """Edge misses pay the origin round trip on top of the edge RTT."""
        from repro.cdn.simulator import CdnSimulator, SimulationConfig
        from repro.workload.generator import WorkloadGenerator
        from repro.workload.profiles import profile_v1
        from repro.workload.scale import ScaleConfig

        generator = WorkloadGenerator(profiles=(profile_v1(),), scale=ScaleConfig.tiny(), seed=41)
        workload = generator.generate_site(profile_v1())

        # Cold, tiny cache -> mostly misses; warm, huge cache -> mostly hits.
        cold = CdnSimulator(
            profiles=(profile_v1(),),
            config=SimulationConfig(seed=42, warm_caches=False, cache_capacity_bytes=10_000_000),
        )
        warm = CdnSimulator(
            profiles=(profile_v1(),),
            config=SimulationConfig(seed=42, cache_capacity_bytes=10**12, background_churn_per_day=0.0),
        )
        warm.warm([workload.catalog])
        sample = workload.requests[:4000]
        for simulator in (cold, warm):
            for _ in simulator.run(iter(sample)):
                pass
        assert cold.metrics.overall_hit_ratio < warm.metrics.overall_hit_ratio
        assert cold.metrics.overall_mean_latency_ms > warm.metrics.overall_mean_latency_ms
