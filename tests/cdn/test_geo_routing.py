"""Tests for CDN geography and request routing."""

from __future__ import annotations

import pytest

from repro.cdn.geo import DataCenter, Topology, default_datacenters, latency_ms
from repro.cdn.routing import Router
from repro.errors import ConfigError
from repro.types import Continent
from repro.workload.population import User
from repro.types import DeviceType


def make_user(continent: Continent) -> User:
    return User(
        user_id="u1",
        site="V-1",
        device=DeviceType.DESKTOP,
        continent=continent,
        user_agent="UA",
        incognito=False,
        activity_weight=1.0,
        addiction_propensity=0.0,
    )


class TestGeo:
    def test_latency_symmetric(self):
        for a in Continent:
            for b in Continent:
                assert latency_ms(a, b) == latency_ms(b, a)

    def test_same_continent_lowest_latency(self):
        for a in Continent:
            for b in Continent:
                if a is not b:
                    assert latency_ms(a, a) < latency_ms(a, b)

    def test_datacenter_capacity_validated(self):
        with pytest.raises(ConfigError):
            DataCenter(dc_id="x", continent=Continent.EUROPE, cache_capacity_bytes=0)

    def test_topology_requires_datacenters(self):
        with pytest.raises(ConfigError):
            Topology(())

    def test_topology_rejects_duplicate_ids(self):
        dc = DataCenter("dup", Continent.EUROPE, 100)
        with pytest.raises(ConfigError):
            Topology((dc, DataCenter("dup", Continent.ASIA, 100)))

    def test_default_topology_one_per_continent(self):
        topology = default_datacenters()
        assert len(topology) == 4
        assert {dc.continent for dc in topology} == set(Continent)


class TestRouter:
    def test_users_routed_to_own_continent(self):
        router = Router(default_datacenters())
        for continent in Continent:
            dc = router.route(make_user(continent))
            assert dc.continent is continent

    def test_fallback_to_nearest_when_continent_missing(self):
        topology = Topology((DataCenter("dc-eu", Continent.EUROPE, 100),))
        router = Router(topology)
        # Everyone is served by the only data center.
        for continent in Continent:
            assert router.route(make_user(continent)).dc_id == "dc-eu"

    def test_nearest_selection_uses_latency(self):
        topology = Topology(
            (
                DataCenter("dc-na", Continent.NORTH_AMERICA, 100),
                DataCenter("dc-asia", Continent.ASIA, 100),
            )
        )
        router = Router(topology)
        # South America is closer to North America (120ms) than Asia (280ms).
        assert router.route_continent(Continent.SOUTH_AMERICA).dc_id == "dc-na"

    def test_latency_to_user(self):
        router = Router(default_datacenters())
        assert router.latency_to_user(make_user(Continent.EUROPE)) == latency_ms(
            Continent.EUROPE, Continent.EUROPE
        )

    def test_deterministic_tie_break(self):
        topology = Topology(
            (
                DataCenter("dc-b", Continent.EUROPE, 100),
                DataCenter("dc-a", Continent.EUROPE, 100),
            )
        )
        router = Router(topology)
        assert router.route_continent(Continent.EUROPE).dc_id == "dc-a"
