"""Unit and property tests for the capacity-bounded cache."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.cache import Cache
from repro.cdn.policies import LruPolicy, make_policy
from repro.errors import CachePolicyError


def lru_cache(capacity: int = 100, ttl: float | None = None) -> Cache:
    return Cache(capacity_bytes=capacity, policy=LruPolicy(), default_ttl=ttl)


class TestBasicOperations:
    def test_capacity_must_be_positive(self):
        with pytest.raises(CachePolicyError):
            Cache(capacity_bytes=0, policy=LruPolicy())

    def test_miss_then_hit(self):
        cache = lru_cache()
        assert cache.lookup("a", now=0.0) is None
        cache.insert("a", 10, now=0.0)
        entry = cache.lookup("a", now=1.0)
        assert entry is not None
        assert entry.size == 10

    def test_stats_identity(self):
        cache = lru_cache()
        cache.lookup("a", 0.0)
        cache.insert("a", 10, 0.0)
        cache.lookup("a", 1.0)
        cache.lookup("b", 2.0)
        assert cache.stats.hits + cache.stats.misses == cache.stats.lookups
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2

    def test_negative_size_rejected(self):
        with pytest.raises(CachePolicyError):
            lru_cache().insert("a", -1, 0.0)

    def test_oversized_entry_not_admitted(self):
        cache = lru_cache(capacity=100)
        assert not cache.insert("big", 101, 0.0)
        assert cache.stats.uncacheable == 1
        assert "big" not in cache

    def test_exact_capacity_entry_admitted(self):
        cache = lru_cache(capacity=100)
        assert cache.insert("exact", 100, 0.0)
        assert cache.used_bytes == 100

    def test_reinsert_updates_size(self):
        cache = lru_cache(capacity=100)
        cache.insert("a", 30, 0.0)
        cache.insert("a", 50, 1.0)
        assert cache.used_bytes == 50
        assert len(cache) == 1

    def test_invalidate(self):
        cache = lru_cache()
        cache.insert("a", 10, 0.0)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert "a" not in cache

    def test_peek_does_not_count(self):
        cache = lru_cache()
        cache.insert("a", 10, 0.0)
        cache.peek("a")
        assert cache.stats.lookups == 0


class TestEviction:
    def test_lru_evicts_least_recent(self):
        cache = lru_cache(capacity=30)
        cache.insert("a", 10, 0.0)
        cache.insert("b", 10, 1.0)
        cache.insert("c", 10, 2.0)
        cache.lookup("a", 3.0)  # refresh a
        cache.insert("d", 10, 4.0)  # evicts b (least recently used)
        assert "a" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_capacity_never_exceeded(self):
        cache = lru_cache(capacity=55)
        for i in range(50):
            cache.insert(f"k{i}", 10, float(i))
            assert cache.used_bytes <= 55

    def test_apply_pressure_frees_bytes(self):
        cache = lru_cache(capacity=100)
        for i in range(10):
            cache.insert(f"k{i}", 10, float(i))
        freed = cache.apply_pressure(35)
        assert freed >= 35
        assert cache.used_bytes <= 65

    def test_apply_pressure_on_empty(self):
        assert lru_cache().apply_pressure(100) == 0


class TestTtl:
    def test_fresh_entry_hits(self):
        cache = lru_cache(ttl=100.0)
        cache.insert("a", 10, 0.0)
        assert cache.lookup("a", 99.0) is not None

    def test_stale_entry_misses_and_is_dropped(self):
        cache = lru_cache(ttl=100.0)
        cache.insert("a", 10, 0.0)
        assert cache.lookup("a", 100.0) is None
        assert cache.stats.expirations == 1
        assert "a" not in cache

    def test_per_entry_ttl_overrides_default(self):
        cache = lru_cache(ttl=100.0)
        cache.insert("a", 10, 0.0, ttl=10.0)
        assert cache.lookup("a", 50.0) is None

    def test_stale_revalidation_refreshes_on_version_match(self):
        cache = lru_cache()
        cache.insert("a", 10, 0.0, ttl=100.0, version=7)
        entry = cache.lookup("a", 150.0, revalidate_version=7)
        assert entry is not None
        assert cache.stats.revalidations == 1
        # Freshness window restarted:
        assert cache.lookup("a", 200.0, revalidate_version=7) is not None

    def test_revalidation_restarts_validated_age(self):
        # Regression: a 304-revalidated entry restarted its freshness
        # window but kept the original ``stored_at`` as its only age
        # anchor, so content-age analyses (Fig. 7) over-reported the age
        # of revalidated entries.
        cache = lru_cache()
        cache.insert("a", 10, 0.0, ttl=100.0, version=7)
        entry = cache.peek("a")
        assert entry.revalidated_at is None
        assert entry.validated_age(60.0) == 60.0
        entry = cache.lookup("a", 150.0, revalidate_version=7)
        # The origin just vouched for the bytes: validated age restarts,
        # while stored_at keeps recording the original insert time.
        assert entry.revalidated_at == 150.0
        assert entry.stored_at == 0.0
        assert entry.validated_age(150.0) == 0.0
        assert entry.validated_age(180.0) == 30.0
        # A second revalidation moves the anchor again.
        cache.lookup("a", 300.0, revalidate_version=7)
        assert entry.validated_age(310.0) == 10.0
        assert cache.stats.revalidations == 2

    def test_stale_revalidation_drops_on_version_mismatch(self):
        cache = lru_cache()
        cache.insert("a", 10, 0.0, ttl=100.0, version=7)
        assert cache.lookup("a", 150.0, revalidate_version=8) is None
        assert "a" not in cache

    def test_fresh_entry_ignores_revalidate_version(self):
        cache = lru_cache()
        cache.insert("a", 10, 0.0, ttl=100.0, version=7)
        assert cache.lookup("a", 50.0, revalidate_version=99) is not None


@settings(max_examples=60, deadline=None)
@given(
    policy_name=st.sampled_from(["lru", "fifo", "lfu", "slru", "gdsf"]),
    operations=st.lists(
        st.tuples(
            st.sampled_from(["insert", "lookup"]),
            st.integers(min_value=0, max_value=20),   # key id
            st.integers(min_value=1, max_value=40),   # size
        ),
        max_size=120,
    ),
)
def test_cache_invariants_hold_under_any_workload(policy_name, operations):
    """Property: for every policy and operation sequence,

    * used bytes never exceed capacity,
    * hits + misses == lookups,
    * tracked-key count matches the entry map.
    """
    cache = Cache(capacity_bytes=100, policy=make_policy(policy_name))
    now = 0.0
    for op, key_id, size in operations:
        now += 1.0
        key = f"k{key_id}"
        if op == "insert":
            cache.insert(key, size, now)
        else:
            cache.lookup(key, now)
        assert cache.used_bytes <= 100
        assert cache.stats.hits + cache.stats.misses == cache.stats.lookups
        assert len(cache.policy) == len(cache)
