"""Frontier-merge spilling: bit-identical parallel output at any budget.

Extends the shard-parallel equivalence contract
(``tests/cdn/test_shard_parallel.py``) under a memory budget: with a
:class:`~repro.spill.SpillPool` attached, buffered result blocks past the
budget are evicted to disk and streamed back in frontier order — and the
emitted record stream, the merged metrics, and every cache counter stay
exactly the sequential run's.  The `_FrontierMerger` unit tests pin the
eviction policy itself: largest non-head block first, the head never.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cdn.simulator import CdnSimulator, SimulationConfig, _FrontierMerger
from repro.spill import MemoryBudget, SpillPool
from repro.trace.batch import RecordBatch
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import profile_v1, profile_v2
from repro.workload.scale import ScaleConfig

from tests.trace.test_batch import varied_records

SEED = 17
N_REQUESTS = 2000


@pytest.fixture(scope="module")
def workload():
    profiles = (profile_v1(), profile_v2())
    generator = WorkloadGenerator(profiles=profiles, scale=ScaleConfig.tiny(), seed=SEED)
    workloads = generator.generate_all()
    requests = []
    for request in generator.merged_requests(workloads):
        requests.append(request)
        if len(requests) >= N_REQUESTS:
            break
    catalogs = [w.catalog for w in workloads.values()]
    return profiles, requests, catalogs


def _simulator(profiles, catalogs) -> CdnSimulator:
    config = SimulationConfig(seed=SEED + 1, cache_capacity_bytes=2_000_000_000)
    simulator = CdnSimulator(profiles=profiles, config=config)
    simulator.warm(catalogs)
    return simulator


@pytest.fixture(scope="module")
def reference(workload):
    profiles, requests, catalogs = workload
    simulator = _simulator(profiles, catalogs)
    records = list(simulator.run(iter(requests)))
    return simulator, records


class TestBudgetedParallelEquivalence:
    @pytest.mark.parametrize(
        ("workers", "batch_size", "queue_depth", "budget"),
        [
            (2, 128, 64, 1),
            (3, 64, 32, 1),
            (4, 256, 512, 50_000),
            (2, 512, 1024, 1 << 30),
        ],
    )
    def test_records_bit_identical(
        self, workload, reference, workers, batch_size, queue_depth, budget, tmp_path
    ):
        profiles, requests, catalogs = workload
        _, expected = reference
        simulator = _simulator(profiles, catalogs)
        with SpillPool(MemoryBudget(budget), spill_dir=str(tmp_path)) as pool:
            batches = list(
                simulator.run_batches(
                    iter(requests),
                    batch_size=batch_size,
                    workers=workers,
                    queue_depth=queue_depth,
                    spill_pool=pool,
                )
            )
            records = [record for batch in batches for record in batch.iter_records()]
        assert records == expected
        stats = simulator.sim_stats
        assert stats is not None
        assert stats.bytes_spilled == stats.bytes_restored
        if budget == 1:
            assert stats.spill_files > 0
            assert stats.bytes_spilled > 0
        if budget >= 1 << 30:
            assert stats.spill_files == 0
        assert list(tmp_path.iterdir()) == []

    def test_metrics_match_sequential(self, workload, reference, tmp_path):
        profiles, requests, catalogs = workload
        ref_sim, _ = reference
        simulator = _simulator(profiles, catalogs)
        with SpillPool(MemoryBudget(1), spill_dir=str(tmp_path)) as pool:
            for _ in simulator.run_batches(
                iter(requests), batch_size=128, workers=3, spill_pool=pool
            ):
                pass
        assert simulator.metrics == ref_sim.metrics
        assert simulator.cache_stats() == ref_sim.cache_stats()
        assert simulator.origin == ref_sim.origin

    def test_no_pool_means_no_spill_telemetry(self, workload):
        profiles, requests, catalogs = workload
        simulator = _simulator(profiles, catalogs)
        for _ in simulator.run_batches(iter(requests[:500]), batch_size=128, workers=2):
            pass
        stats = simulator.sim_stats
        assert stats is not None
        assert stats.spill_files == 0
        assert stats.bytes_spilled == 0
        assert stats.spill_seconds == 0.0


def _block(offset: int, rows: int = 12):
    """A RecordBatch block with one record per rid, rids consecutive."""
    records = varied_records(rows)
    batch = RecordBatch.from_records(records).drop_records()
    rids = np.arange(offset, offset + rows, dtype=np.int64)
    return rids, batch, records


class TestMergerEviction:
    def test_non_head_block_spills_and_restores_in_order(self, tmp_path):
        key = ("dc", 0)
        merger = _FrontierMerger([key])
        with SpillPool(MemoryBudget(1), spill_dir=str(tmp_path)) as pool:
            merger.attach_spill(pool)
            rids_a, batch_a, records_a = _block(0)
            rids_b, batch_b, records_b = _block(12)
            merger.push(key, rids_a, batch_a)
            merger.push(key, rids_b, batch_b)
            buffer = merger._buffers[key]
            # The head stays resident; the second block went to disk.
            assert buffer[0].segment is None
            assert buffer[1].segment is not None
            assert len(pool.live_segments) == 1
            emitted = list(merger.emit(23))
            assert emitted == records_a + records_b
            assert merger.buffered == 0
            # Restoring consumed (and deleted) the segment.
            assert pool.live_segments == ()
        stats = pool.stats()
        assert stats.spill_files == 1
        assert stats.bytes_spilled == stats.bytes_restored > 0

    def test_head_block_is_never_evicted(self, tmp_path):
        key = ("dc", 0)
        merger = _FrontierMerger([key])
        with SpillPool(MemoryBudget(1), spill_dir=str(tmp_path)) as pool:
            merger.attach_spill(pool)
            rids, batch, _ = _block(0)
            merger.push(key, rids, batch)
            assert merger._buffers[key][0].segment is None
            assert merger.evictable_bytes() == 0

    def test_largest_block_evicted_first(self, tmp_path):
        keys = [("dc", 0), ("dc", 1)]
        merger = _FrontierMerger(keys)
        pool = SpillPool(spill_dir=str(tmp_path))  # unlimited: evict manually
        merger.attach_spill(pool)
        small_rids, small_batch, _ = _block(0, rows=4)
        big_rids, big_batch, _ = _block(100, rows=40)
        for key, rids, batch in [
            (keys[0], small_rids, small_batch),
            (keys[0], big_rids, big_batch),
            (keys[1], small_rids, small_batch),
            (keys[1], big_rids, big_batch),
        ]:
            merger.push(key, rids, batch)
        merger.spill_blocks()
        spilled = [
            (key, index)
            for key, buffer in merger._buffers.items()
            for index, block in enumerate(buffer)
            if block.segment is not None
        ]
        assert len(spilled) == 1
        assert spilled[0][1] == 1  # a non-head slot
        pool.close()

    def test_partial_emission_keeps_cursor_state(self, tmp_path):
        key = ("dc", 0)
        merger = _FrontierMerger([key])
        with SpillPool(MemoryBudget(1), spill_dir=str(tmp_path)) as pool:
            merger.attach_spill(pool)
            rids_a, batch_a, records_a = _block(0)
            rids_b, batch_b, records_b = _block(12)
            merger.push(key, rids_a, batch_a)
            merger.push(key, rids_b, batch_b)
            # Emit only half the first block, then push more (triggering
            # enforcement with the head mid-consumption), then drain.
            first = list(merger.emit(5))
            assert first == records_a[:6]
            rids_c, batch_c, records_c = _block(24)
            merger.push(key, rids_c, batch_c)
            rest = list(merger.emit(35))
            assert rest == records_a[6:] + records_b + records_c
            assert merger.buffered == 0

    def test_resident_bytes_drop_on_eviction(self, tmp_path):
        key = ("dc", 0)
        merger = _FrontierMerger([key])
        pool = SpillPool(spill_dir=str(tmp_path))
        merger.attach_spill(pool)
        rids_a, batch_a, _ = _block(0)
        rids_b, batch_b, _ = _block(12)
        merger.push(key, rids_a, batch_a)
        merger.push(key, rids_b, batch_b)
        before = merger._resident_bytes
        freed = merger.spill_blocks()
        assert freed > 0
        assert merger._resident_bytes == before - freed
        pool.close()
