"""Tests for video chunking."""

from __future__ import annotations

import pytest

from repro.cdn.chunking import Chunker
from repro.errors import CdnError
from repro.types import ContentCategory, TrendClass
from repro.workload.catalog import ContentObject


def make_object(category: ContentCategory, size: int) -> ContentObject:
    ext = "mp4" if category is ContentCategory.VIDEO else "jpg"
    return ContentObject(
        object_id=f"{category.value}-{size}",
        site="V-1",
        category=category,
        extension=ext,
        size_bytes=size,
        birth_time=0.0,
        trend=TrendClass.DIURNAL,
        popularity_weight=1.0,
    )


class TestChunker:
    def test_positive_chunk_size_required(self):
        with pytest.raises(CdnError):
            Chunker(chunk_bytes=0)

    def test_images_never_chunked(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.IMAGE, 50_000)
        assert not chunker.is_chunked(obj)
        assert chunker.chunk_count(obj) == 1

    def test_small_video_unchunked(self):
        chunker = Chunker(chunk_bytes=2_000_000)
        obj = make_object(ContentCategory.VIDEO, 1_500_000)
        assert not chunker.is_chunked(obj)

    def test_chunk_count_rounds_up(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.VIDEO, 2500)
        assert chunker.chunk_count(obj) == 3

    def test_chunk_sizes_sum_to_object(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.VIDEO, 2500)
        sizes = [chunker.chunk_size(obj, i) for i in range(3)]
        assert sizes == [1000, 1000, 500]

    def test_chunk_index_out_of_range(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.VIDEO, 2500)
        with pytest.raises(CdnError):
            chunker.chunk_size(obj, 3)

    def test_all_chunks_cover_object(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.VIDEO, 5_300)
        chunks = chunker.all_chunks(obj)
        assert sum(c.size for c in chunks) == 5_300
        assert [c.index for c in chunks] == list(range(6))

    def test_chunk_keys_unique_and_derived(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.VIDEO, 3000)
        keys = [c.key for c in chunker.all_chunks(obj)]
        assert len(set(keys)) == 3
        assert all(key.startswith(obj.object_id) for key in keys)

    def test_range_maps_to_covering_chunks(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.VIDEO, 10_000)
        chunks = chunker.chunks_for_range(obj, start=1500, length=2000)
        assert [c.index for c in chunks] == [1, 2, 3]

    def test_range_single_byte(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.VIDEO, 10_000)
        chunks = chunker.chunks_for_range(obj, start=999, length=1)
        assert [c.index for c in chunks] == [0]

    def test_range_clamped_to_object_end(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.VIDEO, 2_500)
        chunks = chunker.chunks_for_range(obj, start=2_000, length=99_999)
        assert [c.index for c in chunks] == [2]

    def test_invalid_ranges_rejected(self):
        chunker = Chunker(chunk_bytes=1000)
        obj = make_object(ContentCategory.VIDEO, 2_500)
        with pytest.raises(CdnError):
            chunker.chunks_for_range(obj, start=-1, length=10)
        with pytest.raises(CdnError):
            chunker.chunks_for_range(obj, start=2_500, length=10)
        with pytest.raises(CdnError):
            chunker.chunks_for_range(obj, start=0, length=0)

    def test_unchunked_range_returns_whole_object(self):
        chunker = Chunker(chunk_bytes=1_000_000)
        obj = make_object(ContentCategory.IMAGE, 300)
        chunks = chunker.chunks_for_range(obj, 100, 50)
        assert len(chunks) == 1
        assert chunks[0].key == obj.object_id
        assert chunks[0].size == 300
