"""Tests for the edge server (cache + origin + HTTP glue)."""

from __future__ import annotations

import pytest

from repro.cdn.cache import Cache
from repro.cdn.chunking import Chunker
from repro.cdn.geo import DataCenter
from repro.cdn.http import ClientIntent
from repro.cdn.origin import OriginServer
from repro.cdn.policies import LruPolicy
from repro.cdn.server import TREND_TTL_SECONDS, EdgeServer
from repro.stats.sampling import make_rng
from repro.types import CacheStatus, Continent, ContentCategory, TrendClass
from repro.workload.catalog import ContentObject


def make_object(size=5_000_000, category=ContentCategory.VIDEO, trend=TrendClass.DIURNAL) -> ContentObject:
    ext = "mp4" if category is ContentCategory.VIDEO else "jpg"
    return ContentObject(
        object_id="obj-1",
        site="V-1",
        category=category,
        extension=ext,
        size_bytes=size,
        birth_time=0.0,
        trend=trend,
        popularity_weight=1.0,
    )


def make_edge(capacity=100_000_000, chunk_bytes=1_000_000, split=False, trend_ttl=True):
    dc = DataCenter("dc-test", Continent.EUROPE, capacity)
    origin = OriginServer(mutation_rate_per_day=0.0, rng=make_rng(0))
    chunker = Chunker(chunk_bytes)
    if split:
        small = Cache(capacity_bytes=capacity // 10, policy=LruPolicy())
        large = Cache(capacity_bytes=capacity, policy=LruPolicy())
    else:
        small = large = Cache(capacity_bytes=capacity, policy=LruPolicy())
    return EdgeServer(dc, small, large, origin, chunker, trend_aware_ttl=trend_ttl)


class TestServe:
    def test_first_request_misses_then_hits(self):
        edge = make_edge()
        obj = make_object()
        first = edge.serve(obj, ClientIntent(kind="full"), now=0.0)
        assert first.cache_status is CacheStatus.MISS
        assert first.bytes_from_origin == obj.size_bytes
        second = edge.serve(obj, ClientIntent(kind="full"), now=1.0)
        assert second.cache_status is CacheStatus.HIT
        assert second.bytes_from_cache == obj.size_bytes
        assert second.bytes_from_origin == 0

    def test_chunked_video_touches_expected_chunks(self):
        edge = make_edge(chunk_bytes=1_000_000)
        obj = make_object(size=5_000_000)
        result = edge.serve(obj, ClientIntent(kind="full"), now=0.0)
        assert result.chunks_touched == 5

    def test_range_request_touches_subset(self):
        edge = make_edge(chunk_bytes=1_000_000)
        obj = make_object(size=5_000_000)
        edge.serve(obj, ClientIntent(kind="full"), now=0.0)
        intent = ClientIntent(kind="range", range_start=1_500_000, range_length=1_000_000)
        result = edge.serve(obj, intent, now=1.0)
        assert result.chunks_touched == 2
        assert result.cache_status is CacheStatus.HIT
        assert result.first_chunk_index == 1

    def test_partial_chunk_hit_is_request_miss(self):
        edge = make_edge(chunk_bytes=1_000_000)
        obj = make_object(size=5_000_000)
        # Cache only chunks 0-1 via a range request...
        edge.serve(obj, ClientIntent(kind="range", range_start=0, range_length=2_000_000), now=0.0)
        # ...then ask for chunks 1-2: chunk 2 is cold -> request-level MISS.
        result = edge.serve(obj, ClientIntent(kind="range", range_start=1_000_000, range_length=2_000_000), now=1.0)
        assert result.chunks_hit == 1
        assert result.cache_status is CacheStatus.MISS

    def test_uncacheable_publisher_never_stores(self):
        edge = make_edge()
        obj = make_object()
        edge.serve(obj, ClientIntent(kind="full"), now=0.0, cacheable=False)
        result = edge.serve(obj, ClientIntent(kind="full"), now=1.0, cacheable=False)
        assert result.cache_status is CacheStatus.MISS

    def test_trend_ttl_applied(self):
        edge = make_edge()
        obj = make_object(trend=TrendClass.SHORT_LIVED)
        edge.serve(obj, ClientIntent(kind="full"), now=0.0)
        key = f"{obj.object_id}#c0"
        entry = edge.large_cache.peek(key)
        assert entry.expires_at == pytest.approx(TREND_TTL_SECONDS[TrendClass.SHORT_LIVED])

    def test_ttl_disabled(self):
        edge = make_edge(trend_ttl=False)
        obj = make_object()
        edge.serve(obj, ClientIntent(kind="full"), now=0.0)
        entry = edge.large_cache.peek(f"{obj.object_id}#c0")
        assert entry.expires_at is None

    def test_stale_entries_revalidate_without_origin_bytes(self):
        edge = make_edge()
        obj = make_object(trend=TrendClass.SHORT_LIVED)  # 1h TTL
        edge.serve(obj, ClientIntent(kind="full"), now=0.0)
        origin_bytes_before = edge.origin.bytes_served
        result = edge.serve(obj, ClientIntent(kind="full"), now=7200.0)
        # Version unchanged (mutation rate 0) -> revalidation, still a HIT.
        assert result.cache_status is CacheStatus.HIT
        assert edge.origin.bytes_served == origin_bytes_before


class TestSplitTiers:
    def test_small_objects_go_to_small_cache(self):
        edge = make_edge(split=True, chunk_bytes=1_000_000)
        obj = make_object(size=100_000, category=ContentCategory.IMAGE)
        edge.serve(obj, ClientIntent(kind="full"), now=0.0)
        assert edge.small_cache.peek(obj.object_id) is not None
        assert edge.large_cache.peek(obj.object_id) is None

    def test_video_chunks_go_to_large_cache(self):
        edge = make_edge(split=True, chunk_bytes=1_000_000)
        obj = make_object(size=5_000_000)
        edge.serve(obj, ClientIntent(kind="full"), now=0.0)
        assert edge.large_cache.peek(f"{obj.object_id}#c0") is not None
        assert len(edge.small_cache) == 0

    def test_is_split_flags(self):
        assert make_edge(split=True).is_split
        assert not make_edge(split=False).is_split

    def test_caches_listing(self):
        assert len(make_edge(split=True).caches()) == 2
        assert len(make_edge(split=False).caches()) == 1
