"""End-to-end invariants that must hold for *any* seed.

The figure calibrations are asserted on fixed seeds elsewhere; these
tests sweep seeds and check the properties that must never break —
conservation laws, schema validity, ordering, determinism.
"""

from __future__ import annotations

import pytest

from repro.cdn.simulator import CdnSimulator, SimulationConfig
from repro.types import CacheStatus, OBSERVED_STATUS_CODES
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import profile_v2
from repro.workload.scale import ScaleConfig

SEEDS = (0, 1, 99, 12345)


@pytest.fixture(scope="module", params=SEEDS)
def site_run(request):
    seed = request.param
    generator = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=seed)
    workload = generator.generate_site(profile_v2())
    simulator = CdnSimulator(profiles=(profile_v2(),), config=SimulationConfig(seed=seed + 1))
    simulator.warm([workload.catalog])
    records = list(simulator.run(iter(workload.requests)))
    return workload, simulator, records


class TestWorkloadInvariants:
    def test_every_request_after_object_birth(self, site_run):
        workload, _, _ = site_run
        for request in workload.requests:
            assert request.timestamp >= request.obj.birth_time - 1e-6

    def test_requests_time_ordered(self, site_run):
        workload, _, _ = site_run
        times = [r.timestamp for r in workload.requests]
        assert times == sorted(times)

    def test_requests_within_week(self, site_run):
        workload, _, _ = site_run
        duration = ScaleConfig.tiny().duration_seconds
        assert all(0 <= r.timestamp < duration for r in workload.requests)


class TestSimulationInvariants:
    def test_status_codes_valid(self, site_run):
        _, _, records = site_run
        assert {r.status_code for r in records} <= set(OBSERVED_STATUS_CODES)

    def test_bytes_served_never_exceed_object_size(self, site_run):
        _, _, records = site_run
        for record in records:
            assert record.bytes_served <= record.object_size

    def test_hits_plus_misses_equal_lookups_in_every_cache(self, site_run):
        _, simulator, _ = site_run
        for edge in simulator.edges.values():
            for cache in edge.caches():
                stats = cache.stats
                assert stats.hits + stats.misses == stats.lookups
                assert cache.used_bytes <= cache.capacity_bytes

    def test_metrics_agree_with_records(self, site_run):
        _, simulator, records = site_run
        assert simulator.metrics.total_requests == len(records)
        hits = sum(r.cache_status is CacheStatus.HIT for r in records)
        assert sum(m.hits for m in simulator.metrics.sites.values()) == hits

    def test_origin_bytes_conservation(self, site_run):
        """Bytes fetched from the origin by edges equal origin's ledger."""
        _, simulator, _ = site_run
        edge_fetched = sum(
            cache.stats.bytes_fetched_from_origin
            for edge in simulator.edges.values()
            for cache in edge.caches()
        )
        assert edge_fetched == simulator.origin.bytes_served
