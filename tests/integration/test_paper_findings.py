"""Integration tests: the paper's qualitative findings, end to end.

Each test maps to a claim in the paper's Section IV/V (see EXPERIMENTS.md)
and asserts the *shape* of the result — who wins, rough factors, skews —
on the shared tiny-scale pipeline run.  The benchmark harness repeats the
same checks at a larger scale.
"""

from __future__ import annotations

import pytest

from repro.core.aggregate import (
    content_composition,
    device_composition,
    hourly_volume,
    traffic_composition,
)
from repro.core.caching import hit_ratio_analysis, response_code_analysis
from repro.core.content import content_age_survival, popularity_distribution, size_cdf
from repro.core.users import addiction_cdf, interarrival_times, session_lengths
from repro.types import ContentCategory, DeviceType


class TestSection4A_Aggregate:
    def test_finding_multimedia_dominates(self, dataset, catalogs):
        """'Adult traffic primarily comprises of video and image content';
        'up to 99% traffic volume consists of video and image content'."""
        result = traffic_composition(dataset)
        for site in dataset.sites:
            byte_share = (
                result.share(site, ContentCategory.VIDEO, "bytes_requested")
                + result.share(site, ContentCategory.IMAGE, "bytes_requested")
            )
            assert byte_share > 0.95

    def test_finding_v1_video_objects(self, dataset, catalogs):
        """'98% of all [V-1] objects are videos.'"""
        result = content_composition(dataset, catalogs)
        assert result.share("V-1", ContentCategory.VIDEO, "objects") == pytest.approx(0.98, abs=0.02)

    def test_finding_v2_gif_previews(self, dataset, catalogs):
        """V-2 'stores a mix of image (84%) and video (15%) objects' and
        uses many GIFs."""
        result = content_composition(dataset, catalogs)
        assert result.share("V-2", ContentCategory.IMAGE, "objects") == pytest.approx(0.84, abs=0.03)
        gif_objects = sum(1 for o in catalogs["V-2"] if o.extension == "gif")
        assert gif_objects > 0.1 * len(catalogs["V-2"])

    def test_finding_v2_more_image_than_video_requests(self, dataset):
        """'For V-2, 359K requests are for video content whereas 657K
        requests are for image content.'"""
        result = traffic_composition(dataset)
        assert result.row("V-2", ContentCategory.IMAGE).requests > result.row(
            "V-2", ContentCategory.VIDEO
        ).requests

    def test_finding_video_bytes_dominate_despite_fewer_requests(self, dataset):
        """'Video content accounts for disproportionately more traffic
        volume' (Fig. 2b vs 2a)."""
        result = traffic_composition(dataset)
        byte_share = result.share("V-2", ContentCategory.VIDEO, "bytes_requested")
        request_share = result.share("V-2", ContentCategory.VIDEO, "requests")
        assert byte_share > 2 * request_share

    def test_finding_v1_anti_diurnal(self, dataset):
        """'V-1 traffic volume peaks at late-night and early morning hours'
        — opposite of the classic 7-11pm web peak."""
        result = hourly_volume(dataset)
        assert result.peak_hour("V-1") in (22, 23, 0, 1, 2, 3, 4, 5)
        # And specifically NOT in the classic evening peak.
        assert result.peak_hour("V-1") not in range(17, 22)

    def test_finding_desktop_dominates(self, dataset):
        """'The desktop category dominates smartphones and misc.'"""
        result = device_composition(dataset)
        for site in dataset.sites:
            assert result.share(site, DeviceType.DESKTOP) > 0.5

    def test_finding_image_social_sites_more_mobile(self, dataset):
        """'Image-heavy and social networking websites receive relatively
        more visitors from smartphone devices than video websites.'"""
        result = device_composition(dataset)
        video_mobile = max(result.mobile_share("V-1"), result.mobile_share("V-2"))
        for site in ("P-1", "S-1"):
            assert result.mobile_share(site) > video_mobile


class TestSection4B_Content:
    def test_finding_video_sizes(self, dataset):
        """'Majority of requested video objects have sizes greater than
        1 MB' (tens of MB typical)."""
        result = size_cdf(dataset, ContentCategory.VIDEO)
        assert result.fraction_above("V-1", 1_000_000) > 0.7

    def test_finding_image_sizes_bimodal_and_small(self, dataset):
        """'Image objects are less than 1 MB in size' with 'bi-modal
        distributions' (thumbnails vs photos)."""
        result = size_cdf(dataset, ContentCategory.IMAGE)
        for site in ("P-1", "P-2", "S-1"):
            assert result.cdfs[site].evaluate(1_500_000) > 0.9
        assert any(cdf.is_bimodal(split=60_000) for cdf in result.cdfs.values())

    def test_finding_long_tailed_popularity(self, dataset):
        """'A significant fraction of adult objects are requested
        infrequently and a small fraction are very popular.'"""
        result = popularity_distribution(dataset, ContentCategory.IMAGE)
        for site in ("P-1", "V-2"):
            assert result.skewness_ratio(site, head_fraction=0.1) > 0.25

    def test_finding_content_aging(self, dataset):
        """'A declining fraction of objects are requested as their age
        increases' (Fig. 7)."""
        result = content_age_survival(dataset)
        for site, fractions in result.fractions.items():
            assert fractions[0] == pytest.approx(1.0)
            assert fractions[-1] < 0.9
            # Broad decline: the mean of days 5-7 is below days 1-3.
            early = sum(fractions[:3]) / 3
            late = sum(fractions[4:]) / 3
            assert late < early


class TestSection4C_Users:
    def test_finding_video_iat_shorter(self, dataset):
        """'Video adult websites have shorter request IATs as compared to
        image-heavy adult websites'; video median < 10 minutes."""
        result = interarrival_times(dataset)
        for site in ("V-1", "V-2"):
            assert result.median_seconds(site) < 600
        video_median = max(result.median_seconds("V-1"), result.median_seconds("V-2"))
        image_medians = [result.median_seconds(s) for s in ("P-1", "P-2", "S-1")]
        assert min(image_medians) > video_median
        # The image-heavy median IAT is several times the video one.
        assert max(image_medians) > 3 * video_median

    def test_finding_short_sessions(self, dataset):
        """'User engagement for adult content consists of relatively
        short-lived sessions' (median around a minute)."""
        result = session_lengths(dataset)
        for site in dataset.sites:
            assert result.median_seconds(site) < 240  # << YouTube-style engagement

    def test_finding_video_addiction(self, dataset):
        """'At least 10% of video objects have more than 10 requests per
        unique user' while '<1% of image objects' do (Fig. 14)."""
        video = addiction_cdf(dataset, ContentCategory.VIDEO)
        image = addiction_cdf(dataset, ContentCategory.IMAGE)
        assert video.fraction_above("V-1", 10) >= 0.08
        assert video.fraction_above("V-2", 10) >= 0.08
        for site in ("P-1", "P-2", "S-1"):
            assert image.fraction_above(site, 10) < 0.02

    def test_finding_two_orders_of_magnitude_fans(self, pipeline_result):
        """'Some objects have up to two orders of magnitude more requests
        than unique users' (Fig. 13)."""
        from repro.core.users import repeated_access_scatter

        best = 0.0
        for site in ("V-1", "V-2"):
            scatter = repeated_access_scatter(pipeline_result.dataset, site, ContentCategory.VIDEO)
            best = max(best, scatter.max_amplification())
        assert best > 10  # tiny-scale analogue of the paper's 100x points


class TestSection5_Caching:
    def test_finding_image_hit_ratio_better(self, dataset):
        """'Image objects have better overall cache hit ratio than video
        objects' (Fig. 15)."""
        video = hit_ratio_analysis(dataset, ContentCategory.VIDEO)
        image = hit_ratio_analysis(dataset, ContentCategory.IMAGE)
        video_pooled = sum(video.overall_hit_ratio.get(s, 0) * 1 for s in ("V-1", "V-2")) / 2
        image_pooled = sum(image.overall_hit_ratio[s] for s in ("P-1", "P-2", "S-1")) / 3
        # Per-site comparison where both exist:
        for site in ("V-2",):
            assert image.overall_hit_ratio[site] > 0
        assert image_pooled > 0.5

    def test_finding_aggregate_hit_ratio_80_90(self, dataset):
        """'Overall CDN cache hit ratios range between 80-90%.'"""
        hits = sum(s.hits for s in dataset.object_stats.values())
        lookups = sum(s.hits + s.misses for s in dataset.object_stats.values())
        assert 0.72 <= hits / lookups <= 0.95

    def test_finding_popularity_hit_correlation(self, dataset):
        """'Popular objects tend to have higher hit ratios.'"""
        video = hit_ratio_analysis(dataset, ContentCategory.VIDEO)
        assert video.popularity_correlation["V-1"] > 0.3

    def test_finding_304_rare_due_to_incognito(self, dataset):
        """'304 responses constitute a small fraction of all requests'
        because of prevalent incognito browsing."""
        result = response_code_analysis(dataset)
        for site in dataset.sites:
            assert result.code_share(site, 304) < 0.08

    def test_finding_200_most_common(self, dataset):
        """'A majority of response codes are 200.'"""
        result = response_code_analysis(dataset)
        for site in dataset.sites:
            assert result.code_share(site, 200) > 0.5

    def test_finding_s1_least_cached(self, dataset):
        """'S-1 has the smallest percentage of objects added to the CDN
        cache.'"""
        image = hit_ratio_analysis(dataset, ContentCategory.IMAGE)
        s1 = image.cached_fraction["S-1"]
        for site in ("P-1",):
            assert image.cached_fraction[site] > s1
