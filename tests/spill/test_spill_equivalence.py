"""Spilled ≡ unspilled: bit-identical results at any memory budget.

The subsystem's core promise: a run under any ``memory_budget`` —
including a pathological 1-byte budget that forces every spillable
participant to disk — produces *exactly* the artefacts of the unlimited
run: identical study reports, identical aggregates, byte-identical trace
files.  Spilling must also be visible (``bytes_spilled`` > 0 in the
telemetry) and must actually lower the ingest's peak resident footprint.
"""

from __future__ import annotations

import pytest
from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.core.dataset import TraceDataset
from repro.pipeline import generate_trace_plan, run_study
from repro.workload.scale import ScaleConfig

from tests.core.test_streaming_equivalence import _chunk, _study_outcome
from tests.trace.test_io import record_strategy

record_lists = st.lists(record_strategy, min_size=0, max_size=40)
batch_sizes = st.integers(min_value=1, max_value=64)
budgets = st.sampled_from([1, 64, 4096, 1 << 20])


class TestIngestEquivalence:
    """TraceDataset.from_batches under a budget vs. without one."""

    @settings(max_examples=25, deadline=None)
    @given(
        records=record_lists,
        batch_size=batch_sizes,
        budget=budgets,
        keep_store=st.booleans(),
    )
    def test_hypothesis_grid_budget_batchsize_keepstore(
        self, records, batch_size, budget, keep_store
    ):
        note(f"batch_size={batch_size} budget={budget} keep_store={keep_store}")
        reference = _study_outcome(
            TraceDataset.from_batches(_chunk(records, batch_size), keep_store=keep_store)
        )
        spilled = _study_outcome(
            TraceDataset.from_batches(
                _chunk(records, batch_size), keep_store=keep_store, memory_budget=budget
            )
        )
        assert spilled == reference

    def test_one_byte_budget_forces_timeline_spill(self, pipeline_result):
        batches = [batch.drop_records() for batch in pipeline_result.batches]
        baseline = TraceDataset.from_batches(batches, keep_store=False)
        spilled = TraceDataset.from_batches(batches, keep_store=False, memory_budget=1)
        stats = spilled.ingest_stats
        assert stats is not None
        assert stats.spill_files > 0
        assert stats.bytes_spilled > 0
        assert stats.bytes_spilled == stats.bytes_restored
        base_stats = baseline.ingest_stats
        assert base_stats is not None
        assert base_stats.bytes_spilled == 0
        # Evicting the timestamp packs lowers the resident high-water mark.
        assert stats.peak_resident_bytes <= base_stats.peak_resident_bytes
        # And the aggregates still come out bit-identical.
        assert _study_outcome(spilled) == _study_outcome(baseline)

    def test_generous_budget_never_spills(self, pipeline_result):
        batches = [batch.drop_records() for batch in pipeline_result.batches]
        dataset = TraceDataset.from_batches(
            batches, keep_store=False, memory_budget=1 << 40
        )
        stats = dataset.ingest_stats
        assert stats is not None
        assert stats.spill_files == 0
        assert stats.bytes_spilled == 0

    def test_env_variable_fallback(self, pipeline_result, monkeypatch, tmp_path):
        batches = [batch.drop_records() for batch in pipeline_result.batches]
        baseline = _study_outcome(TraceDataset.from_batches(batches, keep_store=False))
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1")
        monkeypatch.setenv("REPRO_SPILL_DIR", str(tmp_path / "spill"))
        spilled = TraceDataset.from_batches(batches, keep_store=False)
        assert spilled.ingest_stats.bytes_spilled > 0
        assert _study_outcome(spilled) == baseline
        # Every segment was consumed or cleaned up at pool close.
        spill_dir = tmp_path / "spill"
        assert not spill_dir.exists() or list(spill_dir.iterdir()) == []

    def test_bad_env_budget_raises_config_error(self, monkeypatch):
        from repro.errors import ConfigError

        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "lots")
        with pytest.raises(ConfigError, match="REPRO_MEMORY_BUDGET"):
            TraceDataset.from_batches([], keep_store=False)


@pytest.fixture(scope="module")
def baseline_study():
    """The unlimited-budget study every budgeted run must reproduce."""
    result, report = run_study(
        seed=29, scale=ScaleConfig.tiny(), keep_store=False, sim_workers=2
    )
    return report.render_text(), report.to_summary_dict()


class TestFullStudyEquivalence:
    """End-to-end run_study: budgeted runs reproduce the unlimited report."""

    @pytest.mark.parametrize(
        ("budget", "keep_store", "workers", "queue_depth"),
        [
            (1, False, 2, 64),  # pathological: everything spills
            (1, True, 2, 256),  # row store kept, aggregates still spill
            (200_000, False, 3, 128),  # tight but realistic
            (1 << 30, False, 2, 64),  # generous: must not spill at all
        ],
    )
    def test_budget_grid_reproduces_report(
        self, baseline_study, budget, keep_store, workers, queue_depth, tmp_path
    ):
        result, report = run_study(
            seed=29,
            scale=ScaleConfig.tiny(),
            keep_store=keep_store,
            sim_workers=workers,
            sim_queue_depth=queue_depth,
            memory_budget=budget,
            spill_dir=str(tmp_path / "spill"),
        )
        assert (report.render_text(), report.to_summary_dict()) == baseline_study
        by_name = {stats.name: stats for stats in result.stage_stats}
        if budget == 1:
            # A 1-byte budget must force both consumers to disk ...
            assert by_name["simulate"].bytes_spilled > 0
            assert by_name["ingest"].bytes_spilled > 0
        if budget >= 1 << 30:
            # ... and a generous one must not spill anything.
            assert all(stats.bytes_spilled == 0 for stats in result.stage_stats)
        for stats in result.stage_stats:
            assert stats.bytes_spilled == stats.bytes_restored
        # No segment survives the run.
        spill_dir = tmp_path / "spill"
        assert not spill_dir.exists() or list(spill_dir.iterdir()) == []


class TestTraceByteIdentity:
    def test_spilled_trace_file_is_byte_identical(self, tmp_path):
        base_path = tmp_path / "base.bin"
        spill_path = tmp_path / "spilled.bin"
        base = generate_trace_plan(
            base_path, seed=31, scale=ScaleConfig.tiny(), sim_workers=2
        )
        spilled = generate_trace_plan(
            spill_path,
            seed=31,
            scale=ScaleConfig.tiny(),
            sim_workers=2,
            memory_budget=1,
            spill_dir=str(tmp_path / "spill"),
        )
        assert base.rows_written == spilled.rows_written
        assert base_path.read_bytes() == spill_path.read_bytes()
        assert sum(stats.bytes_spilled for stats in spilled.stage_stats) > 0
        assert sum(stats.bytes_spilled for stats in base.stage_stats) == 0
