"""MemoryBudget: the byte accountant under the spill pool.

Pure accounting — no I/O, no eviction — so every property is pinned in
isolation: charge/release arithmetic, the peak high-water mark, the
``over()`` contract, and limit validation.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.spill import MemoryBudget


class TestUnlimited:
    def test_default_is_unlimited(self):
        budget = MemoryBudget()
        assert budget.unlimited
        assert budget.limit_bytes is None

    def test_over_is_always_zero(self):
        budget = MemoryBudget()
        budget.charge(10**12)
        assert budget.over() == 0

    def test_charges_still_accounted(self):
        budget = MemoryBudget()
        budget.charge(100)
        budget.charge(50)
        assert budget.total == 150
        assert budget.peak == 150


class TestCharging:
    def test_charge_accumulates_and_returns_total(self):
        budget = MemoryBudget(1000)
        assert budget.charge(400) == 400
        assert budget.charge(300) == 700
        assert budget.total == 700

    def test_negative_charge_releases(self):
        budget = MemoryBudget(1000)
        budget.charge(800)
        budget.charge(-500)
        assert budget.total == 300

    def test_total_clamps_at_zero(self):
        budget = MemoryBudget(1000)
        budget.charge(100)
        budget.charge(-900)
        assert budget.total == 0

    def test_peak_is_a_high_water_mark(self):
        budget = MemoryBudget(1000)
        budget.charge(600)
        budget.charge(-400)
        budget.charge(100)
        assert budget.total == 300
        assert budget.peak == 600


class TestOver:
    def test_within_budget_reports_zero(self):
        budget = MemoryBudget(1000)
        budget.charge(1000)
        assert budget.over() == 0

    def test_overage_is_the_exact_excess(self):
        budget = MemoryBudget(1000)
        budget.charge(1234)
        assert budget.over() == 234

    def test_release_brings_overage_back_down(self):
        budget = MemoryBudget(1000)
        budget.charge(1500)
        budget.charge(-600)
        assert budget.over() == 0


class TestValidation:
    @pytest.mark.parametrize("limit", [0, -1, -10**9])
    def test_limit_below_one_rejected(self, limit):
        with pytest.raises(ConfigError, match="memory budget"):
            MemoryBudget(limit)

    def test_one_byte_budget_is_legal(self):
        budget = MemoryBudget(1)
        budget.charge(2)
        assert budget.over() == 1
