"""Spill segment format: round-trips, atomicity, kill-point fuzz.

Mirrors the trace reader's crash-safety suite
(``tests/trace/test_batch.py``): a spill segment cut at *every* possible
byte offset must either parse as the complete block prefix it is (cuts on
a block boundary) or raise :class:`~repro.errors.SpillError` naming the
file and a byte offset — and a segment with *any* byte flipped must never
decode silently.
"""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np
import pytest

from repro.errors import SpillError
from repro.spill.segment import (
    SPILL_MAGIC,
    SPILL_VERSION,
    SpillFileWriter,
    decode_block,
    encode_block,
    iter_blocks,
    read_blocks,
    write_segment,
)
from repro.trace.batch import StringColumn

_HEADER = struct.Struct("<4sH")
_BLOCK_FRAME = struct.Struct("<QI")


def sample_block(offset: int = 0) -> dict:
    """One block mixing numeric dtypes and a dictionary-encoded column."""
    return {
        "ts": np.arange(offset, offset + 5, dtype=np.float64) * 0.5,
        "user": np.arange(offset, offset + 5, dtype=np.int64),
        "flags": np.array([1, 0, 1, 1, 0], dtype=np.uint8),
        "site": StringColumn(
            np.array([0, 1, 0, 2, 1], dtype=np.int32), ["V-1", "P-1", f"S-{offset}"]
        ),
    }


def assert_block_equal(actual: dict, expected: dict) -> None:
    assert list(actual) == list(expected)
    for name, column in expected.items():
        restored = actual[name]
        if isinstance(column, StringColumn):
            assert isinstance(restored, StringColumn)
            assert restored.codes.dtype == np.int32
            assert restored.codes.tolist() == column.codes.tolist()
            assert list(restored.values) == list(column.values)
        else:
            assert restored.dtype == column.dtype
            assert restored.tolist() == column.tolist()


def build_segment(path, blocks):
    """Write ``blocks`` and return (raw bytes, block boundary offsets)."""
    write_segment(str(path), blocks)
    blob = path.read_bytes()
    boundaries = [_HEADER.size]
    for block in blocks:
        payload = encode_block(block)
        boundaries.append(boundaries[-1] + _BLOCK_FRAME.size + len(payload))
    assert boundaries[-1] == len(blob)
    return blob, boundaries


class TestRoundTrip:
    def test_single_block(self, tmp_path):
        path = tmp_path / "run.spill"
        block = sample_block()
        write_segment(str(path), [block])
        [restored] = read_blocks(str(path))
        assert_block_equal(restored, block)

    def test_multi_block_order_preserved(self, tmp_path):
        path = tmp_path / "run.spill"
        blocks = [sample_block(0), sample_block(7), sample_block(21)]
        write_segment(str(path), blocks)
        restored = read_blocks(str(path))
        assert len(restored) == 3
        for actual, expected in zip(restored, blocks):
            assert_block_equal(actual, expected)

    def test_empty_block(self, tmp_path):
        path = tmp_path / "run.spill"
        write_segment(str(path), [{}])
        assert read_blocks(str(path)) == [{}]

    def test_zero_block_segment(self, tmp_path):
        path = tmp_path / "run.spill"
        write_segment(str(path), [])
        assert read_blocks(str(path)) == []

    def test_empty_arrays_round_trip(self, tmp_path):
        path = tmp_path / "run.spill"
        block = {
            "ts": np.array([], dtype=np.float64),
            "site": StringColumn(np.array([], dtype=np.int32), []),
        }
        write_segment(str(path), [block])
        [restored] = read_blocks(str(path))
        assert_block_equal(restored, block)

    def test_non_contiguous_input_round_trips(self, tmp_path):
        path = tmp_path / "run.spill"
        strided = np.arange(20, dtype=np.int64)[::2]
        write_segment(str(path), [{"user": strided}])
        [restored] = read_blocks(str(path))
        assert restored["user"].tolist() == strided.tolist()


class TestAtomicity:
    def test_final_name_appears_only_on_close(self, tmp_path):
        path = tmp_path / "run.spill"
        writer = SpillFileWriter(str(path))
        writer.write_block(sample_block())
        assert not path.exists()
        assert os.path.exists(str(path) + ".tmp")
        writer.close()
        assert path.exists()
        assert not os.path.exists(str(path) + ".tmp")

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "run.spill"
        writer = SpillFileWriter(str(path))
        writer.close()
        writer.close()
        assert path.exists()

    def test_abort_leaves_nothing(self, tmp_path):
        path = tmp_path / "run.spill"
        writer = SpillFileWriter(str(path))
        writer.write_block(sample_block())
        writer.abort()
        assert list(tmp_path.iterdir()) == []

    def test_write_segment_aborts_on_block_error(self, tmp_path):
        path = tmp_path / "run.spill"

        def blocks():
            yield sample_block()
            raise RuntimeError("producer died")

        with pytest.raises(RuntimeError, match="producer died"):
            write_segment(str(path), blocks())
        assert list(tmp_path.iterdir()) == []

    def test_writer_counts_payload(self, tmp_path):
        path = tmp_path / "run.spill"
        writer = SpillFileWriter(str(path))
        first = writer.write_block(sample_block(0))
        second = writer.write_block(sample_block(5))
        writer.close()
        assert writer.blocks == 2
        assert writer.payload_bytes == first + second


class TestKillPoints:
    """Truncate and corrupt the segment at every byte offset."""

    def test_every_truncation_offset(self, tmp_path):
        source = tmp_path / "full.spill"
        blob, boundaries = build_segment(source, [sample_block(0), sample_block(9)])
        path = tmp_path / "cut.spill"
        for cut in range(len(blob)):
            path.write_bytes(blob[:cut])
            if cut in boundaries:
                # Clean cut on a block boundary: the complete prefix parses.
                n_blocks = boundaries.index(cut)
                assert len(read_blocks(str(path))) == n_blocks
                continue
            with pytest.raises(SpillError) as error:
                read_blocks(str(path))
            message = str(error.value)
            assert "cut.spill" in message
            assert "byte" in message

    def test_every_single_byte_flip_detected(self, tmp_path):
        source = tmp_path / "full.spill"
        blob, _ = build_segment(source, [sample_block(0), sample_block(9)])
        path = tmp_path / "flip.spill"
        for index in range(len(blob)):
            mangled = bytearray(blob)
            mangled[index] ^= 0xFF
            path.write_bytes(bytes(mangled))
            with pytest.raises(SpillError) as error:
                read_blocks(str(path))
            assert "flip.spill" in str(error.value)

    def test_first_block_flushes_before_second_truncates(self, tmp_path):
        source = tmp_path / "full.spill"
        blocks = [sample_block(0), sample_block(9)]
        blob, boundaries = build_segment(source, blocks)
        path = tmp_path / "cut.spill"
        path.write_bytes(blob[: boundaries[1] + 5])  # mid-second-block
        seen = []
        with pytest.raises(SpillError):
            for block in iter_blocks(str(path)):
                seen.append(block)
        assert len(seen) == 1
        assert_block_equal(seen[0], blocks[0])


class TestFraming:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.spill"
        path.write_bytes(b"NOPE" + struct.pack("<H", SPILL_VERSION))
        with pytest.raises(SpillError, match="bad magic at byte 0"):
            read_blocks(str(path))

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "bad.spill"
        path.write_bytes(_HEADER.pack(SPILL_MAGIC, SPILL_VERSION + 1))
        with pytest.raises(SpillError, match="unsupported version"):
            read_blocks(str(path))

    def test_empty_file_is_a_truncated_header(self, tmp_path):
        path = tmp_path / "bad.spill"
        path.write_bytes(b"")
        with pytest.raises(SpillError, match="truncated header at byte 0"):
            read_blocks(str(path))

    def test_implausible_block_length(self, tmp_path):
        path = tmp_path / "bad.spill"
        payload = encode_block(sample_block())
        path.write_bytes(
            _HEADER.pack(SPILL_MAGIC, SPILL_VERSION)
            + _BLOCK_FRAME.pack(1 << 50, zlib.crc32(payload))
            + payload
        )
        with pytest.raises(SpillError, match="implausible block length"):
            read_blocks(str(path))

    def test_crc_mismatch_names_block_offset(self, tmp_path):
        path = tmp_path / "bad.spill"
        payload = encode_block(sample_block())
        path.write_bytes(
            _HEADER.pack(SPILL_MAGIC, SPILL_VERSION)
            + _BLOCK_FRAME.pack(len(payload), zlib.crc32(payload) ^ 1)
            + payload
        )
        with pytest.raises(SpillError, match=f"CRC mismatch for the block at byte {_HEADER.size}"):
            read_blocks(str(path))


class TestDecode:
    """Payload-level validation once framing (CRC) has passed."""

    def test_unknown_column_kind(self):
        payload = struct.pack("<I", 1) + struct.pack("<H", 1) + b"x" + struct.pack("<B", 9)
        with pytest.raises(SpillError, match="unknown column kind 9"):
            decode_block("seg.spill", 6, payload)

    def test_trailing_bytes_rejected(self):
        payload = encode_block({"ts": np.array([1.0])}) + b"junk"
        with pytest.raises(SpillError, match="trailing bytes after the last column"):
            decode_block("seg.spill", 6, payload)

    def test_unknown_dtype_rejected(self):
        payload = (
            struct.pack("<I", 1)
            + struct.pack("<H", 2)
            + b"ts"
            + struct.pack("<B", 0)
            + struct.pack("<H", 4)
            + b"<x99"
            + struct.pack("<Q", 0)
        )
        with pytest.raises(SpillError, match="unknown dtype"):
            decode_block("seg.spill", 6, payload)

    def test_offsets_are_absolute(self):
        # A short payload whose declared row count overruns it: the error
        # offset must include the block's base file offset.
        payload = encode_block({"ts": np.array([1.0, 2.0])})[:-8]
        with pytest.raises(SpillError) as error:
            decode_block("seg.spill", 1000, payload)
        assert "at byte 1" in str(error.value)  # 1000-something, not a small pos
        assert "seg.spill" in str(error.value)
