"""SpillPool: accounting, eviction policy, segment lifecycle, cleanup.

The pool's contracts pinned here:

* charging past the budget evicts the registrant with the *largest*
  currently evictable footprint, repeatedly, until within budget or no
  handle can free anything (residual overage allowed);
* restored segments are deleted as soon as they are consumed;
* :meth:`SpillPool.close` removes every leftover segment — and the
  tempdir the pool created — even after a mid-run exception.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.spill import MemoryBudget, SpillPool


def np_block(n: int = 4, seed: int = 0) -> dict:
    return {"user": np.arange(seed, seed + n, dtype=np.int64)}


class _Participant:
    """A spillable registrant holding a fake resident byte count."""

    def __init__(self, pool: SpillPool, label: str, resident: int):
        self.resident = resident
        self.spill_calls = 0
        self.handle = pool.register(
            label, evictable_bytes=lambda: self.resident, spill=self._spill
        )
        self.handle.set_level(resident)

    def _spill(self) -> int:
        freed = self.resident
        self.spill_calls += 1
        self.resident = 0
        self.handle.set_level(0)
        return freed


class TestAccounting:
    def test_set_level_charges_the_delta(self):
        with SpillPool(MemoryBudget(1000)) as pool:
            handle = pool.register("a")
            handle.set_level(400)
            handle.set_level(600)
            assert pool.budget.total == 600
            handle.set_level(100)
            assert pool.budget.total == 100

    def test_release_zeroes_the_charge(self):
        with SpillPool(MemoryBudget(1000)) as pool:
            handle = pool.register("a")
            handle.set_level(700)
            handle.release()
            assert pool.budget.total == 0
            assert handle.level == 0

    def test_two_handles_share_one_budget(self):
        with SpillPool(MemoryBudget(1000)) as pool:
            first = pool.register("a")
            second = pool.register("b")
            first.set_level(300)
            second.set_level(400)
            assert pool.budget.total == 700


class TestEviction:
    def test_largest_evictable_participant_goes_first(self):
        with SpillPool(MemoryBudget(1000)) as pool:
            small = _Participant(pool, "small", 300)
            big = _Participant(pool, "big", 600)
            # 900 resident: within budget, nobody spilled.
            assert big.spill_calls == 0 and small.spill_calls == 0
            extra = pool.register("extra")
            extra.set_level(200)  # 1100 > 1000
            assert big.spill_calls == 1
            assert small.spill_calls == 0  # evicting big already sufficed

    def test_eviction_repeats_until_within_budget(self):
        with SpillPool(MemoryBudget(100)) as pool:
            first = _Participant(pool, "a", 300)
            second = _Participant(pool, "b", 200)
            third = pool.register("push")
            third.set_level(50)
            assert first.spill_calls == 1
            assert second.spill_calls == 1

    def test_residual_overage_is_allowed(self):
        with SpillPool(MemoryBudget(10)) as pool:
            handle = pool.register("irreducible")  # accounting-only
            handle.set_level(5000)
            # Nothing evictable: the pool stops rather than spinning.
            assert pool.budget.total == 5000
            assert pool.budget.over() == 4990

    def test_accounting_only_handle_is_never_evicted(self):
        with SpillPool(MemoryBudget(100)) as pool:
            participant = _Participant(pool, "evictable", 80)
            fixed = pool.register("fixed")
            fixed.set_level(90)
            assert participant.spill_calls == 1
            assert pool.budget.total == 90

    def test_no_eviction_while_within_budget(self):
        with SpillPool(MemoryBudget(10_000)) as pool:
            participant = _Participant(pool, "quiet", 500)
            participant.handle.set_level(600)
            assert participant.spill_calls == 0

    def test_spilling_handle_not_reentered(self):
        with SpillPool(MemoryBudget(100)) as pool:
            calls = []

            def spill():
                calls.append(1)
                # Re-charging mid-spill must not recurse into this handle.
                handle.set_level(500)
                handle.set_level(0)
                return 500

            handle = pool.register("reentrant", evictable_bytes=lambda: 500, spill=spill)
            handle.set_level(500)
            assert calls == [1]

    def test_unlimited_pool_never_evicts(self):
        with SpillPool() as pool:
            participant = _Participant(pool, "free", 10**9)
            assert participant.spill_calls == 0


class TestSegmentLifecycle:
    def test_write_then_read_round_trips_and_deletes(self):
        with SpillPool(MemoryBudget(1)) as pool:
            handle = pool.register("runs")
            segment = handle.write_run([np_block(4, 0), np_block(4, 10)])
            assert os.path.exists(segment.path)
            assert pool.live_segments == (segment,)
            blocks = handle.read_run(segment)
            assert [b["user"].tolist() for b in blocks] == [[0, 1, 2, 3], [10, 11, 12, 13]]
            assert not os.path.exists(segment.path)
            assert pool.live_segments == ()

    def test_iter_run_deletes_even_when_abandoned(self):
        with SpillPool(MemoryBudget(1)) as pool:
            handle = pool.register("runs")
            segment = handle.write_run([np_block(), np_block()])
            iterator = handle.iter_run(segment)
            next(iterator)
            iterator.close()  # abandoned mid-stream
            assert not os.path.exists(segment.path)

    def test_stats_count_spill_and_restore(self):
        with SpillPool(MemoryBudget(1)) as pool:
            handle = pool.register("runs")
            segment = handle.write_run([np_block()])
            handle.read_run(segment)
            stats = pool.stats()
            assert stats.spill_files == 1
            assert stats.bytes_spilled == segment.payload_bytes
            assert stats.bytes_restored == segment.payload_bytes
            assert stats.spill_seconds >= 0.0

    def test_write_run_failure_leaves_no_file(self, tmp_path):
        pool = SpillPool(MemoryBudget(1), spill_dir=str(tmp_path))
        handle = pool.register("runs")

        def blocks():
            yield np_block()
            raise RuntimeError("source died")

        with pytest.raises(RuntimeError, match="source died"):
            handle.write_run(blocks())
        assert list(tmp_path.iterdir()) == []
        assert pool.live_segments == ()
        pool.close()

    def test_segment_names_are_sequenced_and_sanitised(self, tmp_path):
        pool = SpillPool(MemoryBudget(1), spill_dir=str(tmp_path))
        handle = pool.register("weird label/with:stuff")
        first = handle.write_run([np_block()])
        second = handle.write_run([np_block()])
        assert os.path.basename(first.path) == "000001-weird-label-with-stuff.spill"
        assert os.path.basename(second.path) == "000002-weird-label-with-stuff.spill"
        pool.close()


class TestClose:
    def test_close_removes_all_segments_after_midrun_exception(self, tmp_path):
        pool = SpillPool(MemoryBudget(1), spill_dir=str(tmp_path))
        handle = pool.register("runs")
        with pytest.raises(RuntimeError, match="stage blew up"):
            try:
                handle.write_run([np_block()])
                handle.write_run([np_block()])
                raise RuntimeError("stage blew up")
            finally:
                pool.close()
        assert list(tmp_path.iterdir()) == []

    def test_close_removes_owned_tempdir(self):
        pool = SpillPool(MemoryBudget(1))
        handle = pool.register("runs")
        segment = handle.write_run([np_block()])
        owned = pool._own_dir
        assert owned is not None and os.path.isdir(owned)
        pool.close()
        assert not os.path.exists(owned)
        assert not os.path.exists(segment.path)

    def test_close_keeps_an_explicit_spill_dir(self, tmp_path):
        target = tmp_path / "spill-here"
        pool = SpillPool(MemoryBudget(1), spill_dir=str(target))
        handle = pool.register("runs")
        handle.write_run([np_block()])
        pool.close()
        # The caller's directory survives; only the segments are removed.
        assert target.is_dir()
        assert list(target.iterdir()) == []

    def test_close_is_idempotent(self, tmp_path):
        pool = SpillPool(MemoryBudget(1), spill_dir=str(tmp_path))
        pool.register("runs").write_run([np_block()])
        pool.close()
        pool.close()
        assert list(tmp_path.iterdir()) == []

    def test_context_manager_closes_on_error(self, tmp_path):
        with pytest.raises(ValueError, match="boom"):
            with SpillPool(MemoryBudget(1), spill_dir=str(tmp_path)) as pool:
                pool.register("runs").write_run([np_block()])
                raise ValueError("boom")
        assert list(tmp_path.iterdir()) == []

    def test_lazy_tempdir_only_created_when_spilling(self):
        pool = SpillPool(MemoryBudget(10**12))
        pool.register("quiet").set_level(10)
        assert pool._own_dir is None
        pool.close()
