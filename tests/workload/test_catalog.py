"""Tests for content-catalog generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CatalogError
from repro.stats.sampling import make_rng
from repro.types import ContentCategory, TrendClass
from repro.workload.catalog import ContentCatalog, ContentObject, build_catalog
from repro.workload.profiles import ALL_PROFILES, profile_v1, profile_v2
from repro.workload.scale import ScaleConfig


@pytest.fixture(scope="module")
def v2_catalog():
    return build_catalog(profile_v2(), ScaleConfig.tiny(), make_rng(0))


class TestBuildCatalog:
    def test_total_object_count_matches_scale(self, v2_catalog):
        expected = ScaleConfig.tiny().objects(profile_v2().paper_object_count)
        assert len(v2_catalog) == expected

    def test_category_mix_matches_profile(self, v2_catalog):
        counts = v2_catalog.category_counts()
        total = len(v2_catalog)
        mix = profile_v2().object_mix
        for category in ContentCategory:
            assert counts[category] / total == pytest.approx(mix[category], abs=0.02)

    def test_object_ids_unique(self, v2_catalog):
        ids = [obj.object_id for obj in v2_catalog]
        assert len(set(ids)) == len(ids)

    def test_extensions_match_categories(self, v2_catalog):
        from repro.types import category_for_extension

        for obj in v2_catalog:
            assert category_for_extension(obj.extension) is obj.category

    def test_preexisting_fraction_respected(self, v2_catalog):
        share = sum(obj.is_preexisting for obj in v2_catalog) / len(v2_catalog)
        assert share == pytest.approx(profile_v2().preexisting_fraction, abs=0.07)

    def test_birth_times_within_trace(self, v2_catalog):
        for obj in v2_catalog:
            assert 0.0 <= obj.birth_time < ScaleConfig.tiny().duration_seconds

    def test_trend_mix_roughly_matches(self, v2_catalog):
        mix = profile_v2().trend_mix
        total = len(v2_catalog)
        for trend in TrendClass:
            share = len(v2_catalog.by_trend(trend)) / total
            assert share == pytest.approx(mix[trend], abs=0.06)

    def test_popularity_weights_positive_and_normalisable(self, v2_catalog):
        weights = np.array([obj.popularity_weight for obj in v2_catalog])
        assert np.all(weights > 0)
        assert weights.sum() == pytest.approx(1.0, abs=1e-6)

    def test_popularity_weights_are_skewed(self, v2_catalog):
        weights = np.sort([obj.popularity_weight for obj in v2_catalog])[::-1]
        head = weights[: max(1, len(weights) // 10)].sum()
        assert head > 0.25  # top 10% of objects carry far more than 10% of weight

    def test_deterministic_given_seed(self):
        a = build_catalog(profile_v1(), ScaleConfig.tiny(), make_rng(3))
        b = build_catalog(profile_v1(), ScaleConfig.tiny(), make_rng(3))
        assert [o.object_id for o in a] == [o.object_id for o in b]
        assert [o.size_bytes for o in a] == [o.size_bytes for o in b]

    def test_all_profiles_build(self):
        for profile in ALL_PROFILES():
            catalog = build_catalog(profile, ScaleConfig.tiny(), make_rng(1))
            assert len(catalog) >= 20


class TestContentCatalogContainer:
    def test_empty_rejected(self):
        with pytest.raises(CatalogError):
            ContentCatalog("X", [])

    def test_duplicate_ids_rejected(self):
        obj = ContentObject(
            object_id="dup", site="X", category=ContentCategory.IMAGE, extension="jpg",
            size_bytes=10, birth_time=0.0, trend=TrendClass.DIURNAL, popularity_weight=1.0,
        )
        with pytest.raises(CatalogError):
            ContentCatalog("X", [obj, obj])

    def test_lookup_and_contains(self, v2_catalog):
        first = v2_catalog.objects[0]
        assert first.object_id in v2_catalog
        assert v2_catalog[first.object_id] is first

    def test_total_bytes(self, v2_catalog):
        assert v2_catalog.total_bytes() == sum(o.size_bytes for o in v2_catalog)
