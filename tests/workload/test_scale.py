"""Tests for the scale configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workload.scale import ScaleConfig


class TestValidation:
    def test_zero_scale_rejected(self):
        with pytest.raises(ConfigError):
            ScaleConfig(object_scale=0.0)

    def test_scale_above_one_rejected(self):
        with pytest.raises(ConfigError):
            ScaleConfig(request_scale=1.5)

    def test_bad_duration_rejected(self):
        with pytest.raises(ConfigError):
            ScaleConfig(duration_seconds=0)


class TestScaling:
    def test_objects_scaled_with_floor(self):
        scale = ScaleConfig(object_scale=0.01, request_scale=0.01, user_scale=0.01)
        assert scale.objects(6_600) == 66
        assert scale.objects(100) == 20  # floor

    def test_requests_scaled_with_floor(self):
        scale = ScaleConfig(object_scale=0.01, request_scale=0.01, user_scale=0.01)
        assert scale.requests(3_200_000) == 32_000
        assert scale.requests(1_000) == 200  # floor

    def test_users_scaled_with_floor(self):
        scale = ScaleConfig(object_scale=0.01, request_scale=0.01, user_scale=0.01)
        assert scale.users(1_400_000) == 14_000
        assert scale.users(100) == 25  # floor

    def test_duration_hours(self):
        assert ScaleConfig().duration_hours == 168


class TestPresets:
    def test_presets_ordered_by_size(self):
        tiny, small, medium = ScaleConfig.tiny(), ScaleConfig.small(), ScaleConfig.medium()
        assert tiny.request_scale < small.request_scale < medium.request_scale

    def test_presets_preserve_requests_per_user_ratio(self):
        # user_scale == request_scale keeps per-user behaviour at paper scale.
        for preset in (ScaleConfig.tiny(), ScaleConfig.small(), ScaleConfig.medium()):
            assert preset.user_scale == preset.request_scale

    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert ScaleConfig.from_env() == ScaleConfig.small()

    def test_from_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert ScaleConfig.from_env() == ScaleConfig.medium()

    def test_from_env_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ConfigError):
            ScaleConfig.from_env()
