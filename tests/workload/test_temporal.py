"""Tests for daily cycles and trend envelopes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.stats.sampling import make_rng
from repro.types import TrendClass
from repro.workload.temporal import (
    daily_cycle,
    sample_request_times_in_hour,
    site_hourly_rate,
    trend_envelope,
)


class TestDailyCycle:
    def test_mean_is_one(self):
        cycle = daily_cycle(peak_local_hour=2, amplitude=3.0)
        assert cycle.mean() == pytest.approx(1.0)

    def test_peak_at_configured_hour(self):
        cycle = daily_cycle(peak_local_hour=5, amplitude=2.0)
        assert int(np.argmax(cycle)) == 5

    def test_amplitude_is_peak_to_trough(self):
        cycle = daily_cycle(peak_local_hour=0, amplitude=2.5)
        assert cycle.max() / cycle.min() == pytest.approx(2.5, rel=1e-6)

    def test_flat_when_amplitude_one(self):
        np.testing.assert_allclose(daily_cycle(0, 1.0), np.ones(24))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            daily_cycle(24, 2.0)
        with pytest.raises(ConfigError):
            daily_cycle(0, 0.9)


class TestSiteHourlyRate:
    def test_length_and_mean(self):
        rate = site_hourly_rate(168, peak_local_hour=22, amplitude=1.5)
        assert rate.size == 168
        assert rate.mean() == pytest.approx(1.0)

    def test_weekend_boost(self):
        rate = site_hourly_rate(168, peak_local_hour=12, amplitude=1.0, weekend_boost=1.5)
        weekend = rate[:48].mean()  # Sat + Sun
        weekday = rate[48:].mean()
        assert weekend > weekday

    def test_daily_periodicity_within_week(self):
        rate = site_hourly_rate(168, peak_local_hour=3, amplitude=2.0, weekend_boost=1.0)
        np.testing.assert_allclose(rate[:24], rate[24:48])


class TestTrendEnvelope:
    def test_zero_before_birth(self):
        for trend in TrendClass:
            envelope = trend_envelope(trend, birth_hour=100, duration_hours=168, rng=make_rng(0))
            assert np.all(envelope[:100] == 0.0), trend

    def test_nonnegative(self):
        for trend in TrendClass:
            envelope = trend_envelope(trend, birth_hour=0, duration_hours=168, rng=make_rng(1))
            assert np.all(envelope >= 0.0), trend

    def test_diurnal_has_24h_period(self):
        envelope = trend_envelope(TrendClass.DIURNAL, 0, 168, make_rng(2))
        # Autocorrelation at lag 24 should be strongly positive.
        x = envelope - envelope.mean()
        autocorr = float((x[:-24] * x[24:]).sum() / (x**2).sum())
        assert autocorr > 0.5

    def test_diurnal_peak_alignment(self):
        envelope = trend_envelope(TrendClass.DIURNAL, 0, 168, make_rng(3), peak_hour=5)
        peak_hours = {int(h % 24) for h in np.argsort(envelope)[-7:]}
        # Peaks cluster within a few hours of the requested peak.
        assert any(abs(((h - 5 + 12) % 24) - 12) <= 4 for h in peak_hours)

    def test_short_lived_dies_within_days(self):
        envelope = trend_envelope(TrendClass.SHORT_LIVED, 0, 168, make_rng(4))
        peak = envelope.max()
        assert np.all(envelope[72:] < 0.05 * peak)

    def test_long_lived_outlasts_short_lived(self):
        rng = make_rng(5)
        long_total = 0.0
        short_total = 0.0
        for i in range(20):
            long_envelope = trend_envelope(TrendClass.LONG_LIVED, 0, 168, make_rng(100 + i))
            short_envelope = trend_envelope(TrendClass.SHORT_LIVED, 0, 168, make_rng(200 + i))
            long_total += (np.argmax(np.cumsum(long_envelope) >= 0.9 * long_envelope.sum()))
            short_total += (np.argmax(np.cumsum(short_envelope) >= 0.9 * short_envelope.sum()))
        assert long_total > short_total  # long-lived mass arrives later

    def test_flash_crowd_has_dominant_spike(self):
        envelope = trend_envelope(TrendClass.FLASH_CROWD, 0, 168, make_rng(6))
        baseline = np.median(envelope[envelope > 0])
        assert envelope.max() > 5 * baseline

    def test_deterministic_given_rng(self):
        a = trend_envelope(TrendClass.OUTLIER, 10, 168, make_rng(7))
        b = trend_envelope(TrendClass.OUTLIER, 10, 168, make_rng(7))
        np.testing.assert_array_equal(a, b)


class TestSampleRequestTimes:
    def test_times_within_hour(self):
        times = sample_request_times_in_hour(5, 100, make_rng(0))
        assert np.all(times >= 5 * 3600)
        assert np.all(times < 6 * 3600)

    def test_sorted(self):
        times = sample_request_times_in_hour(0, 50, make_rng(1))
        assert np.all(np.diff(times) >= 0)
