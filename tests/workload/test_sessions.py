"""Tests for the session-planning primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.sampling import make_rng
from repro.types import Continent
from repro.workload.profiles import profile_p1, profile_v1
from repro.workload.sessions import (
    SESSION_TIMEOUT_SECONDS,
    hourly_start_distribution,
    plan_session,
    sample_request_counts,
    sample_session_starts,
    sample_think_times,
)


class TestStartDistribution:
    def test_is_probability_distribution(self):
        dist = hourly_start_distribution(profile_v1(), 168, utc_offset_hours=0)
        assert dist.sum() == pytest.approx(1.0)
        assert np.all(dist >= 0)

    def test_local_peak_shifts_with_offset(self):
        profile = profile_v1()
        base = hourly_start_distribution(profile, 168, utc_offset_hours=0)
        shifted = hourly_start_distribution(profile, 168, utc_offset_hours=8)
        # The UTC+8 user's local-hour-h activity happens at UTC hour h-8.
        base_peak = int(np.argmax(base[:24]))
        shifted_peak = int(np.argmax(shifted[:24]))
        assert (base_peak - shifted_peak) % 24 == 8

    def test_partial_day_does_not_wrap_week_boundary(self):
        # Regression: the UTC shift used to np.roll the full duration grid,
        # so a trace that is not a whole number of days wrapped the first
        # hours' mass onto its tail.  A partial-week trace must match the
        # prefix of the full-week distribution (renormalised).
        profile = profile_v1()
        for offset in (-5, 8):
            week = hourly_start_distribution(profile, 168, offset)
            for hours in (36, 100):
                partial = hourly_start_distribution(profile, hours, offset)
                expected = week[:hours] / week[:hours].sum()
                assert partial == pytest.approx(expected)

    def test_all_continents_supported(self):
        profile = profile_p1()
        for continent in Continent:
            dist = hourly_start_distribution(profile, 168, continent.utc_offset_hours)
            assert dist.size == 168


class TestSessionStarts:
    def test_count_and_range(self):
        dist = hourly_start_distribution(profile_v1(), 168, 0)
        starts = sample_session_starts(500, dist, make_rng(0))
        assert starts.size == 500
        assert np.all(starts >= 0)
        assert np.all(starts < 168 * 3600)

    def test_zero_sessions(self):
        dist = hourly_start_distribution(profile_v1(), 168, 0)
        assert sample_session_starts(0, dist, make_rng(0)).size == 0

    def test_starts_follow_distribution(self):
        profile = profile_v1()
        dist = hourly_start_distribution(profile, 168, 0)
        starts = sample_session_starts(20_000, dist, make_rng(1))
        hours = (starts // 3600).astype(int)
        observed = np.bincount(hours % 24, minlength=24) / starts.size
        expected = dist.reshape(7, 24).sum(axis=0)
        assert np.corrcoef(observed, expected)[0, 1] > 0.8


class TestRequestCounts:
    def test_support_at_least_one(self):
        counts = sample_request_counts(1000, 0.4, 3.0, make_rng(0))
        assert counts.min() >= 1

    def test_single_fraction_respected(self):
        counts = sample_request_counts(20_000, 0.5, 4.0, make_rng(1))
        # Singles come from the 0.5 mixture plus none from the browse branch
        # (browse sessions have >= 2 requests).
        assert np.mean(counts == 1) == pytest.approx(0.5, abs=0.02)

    def test_browse_mean_respected(self):
        counts = sample_request_counts(50_000, 0.0, 4.0, make_rng(2))
        assert counts.mean() == pytest.approx(4.0, rel=0.05)

    def test_empty(self):
        assert sample_request_counts(0, 0.5, 3.0, make_rng(0)).size == 0


class TestThinkTimes:
    def test_capped_below_timeout(self):
        times = sample_think_times(5000, 300.0, make_rng(0))
        assert times.max() < SESSION_TIMEOUT_SECONDS

    def test_mean_roughly_exponential(self):
        times = sample_think_times(50_000, 60.0, make_rng(1))
        assert times.mean() == pytest.approx(60.0, rel=0.1)

    def test_empty(self):
        assert sample_think_times(0, 60.0, make_rng(0)).size == 0


class TestPlanSession:
    def test_times_ascending_and_within_trace(self):
        plan = plan_session(0, 1000.0, 0.3, 4.0, 60.0, 604800.0, make_rng(0))
        assert np.all(np.diff(plan.request_times) >= 0)
        assert np.all(plan.request_times < 604800.0)
        assert plan.request_times[0] == 1000.0

    def test_never_empty_even_at_trace_end(self):
        plan = plan_session(0, 604799.5, 0.0, 5.0, 60.0, 604800.0, make_rng(1))
        assert plan.request_times.size >= 1

    def test_out_of_window_session_plans_no_requests(self):
        # Regression: a session starting at/after the trace end used to
        # fabricate a phantom request at ``duration_seconds - 1.0``.
        for start in (604800.0, 604800.1, 1e9):
            plan = plan_session(0, start, 0.0, 5.0, 60.0, 604800.0, make_rng(2))
            assert plan.request_times.size == 0
            assert plan.start_time == start

    def test_subsecond_trace_never_yields_negative_times(self):
        # Regression: with a trace shorter than 1 s, the phantom request
        # landed at the *negative* time ``duration_seconds - 1.0``.
        plan = plan_session(0, 0.5, 0.0, 5.0, 60.0, 0.25, make_rng(3))
        assert plan.request_times.size == 0

    def test_planned_gaps_stay_within_session_timeout(self):
        for seed in range(30):
            plan = plan_session(0, 0.0, 0.0, 8.0, 200.0, 604800.0, make_rng(seed))
            if plan.request_times.size > 1:
                assert np.diff(plan.request_times).max() < SESSION_TIMEOUT_SECONDS

    @settings(max_examples=30)
    @given(
        start=st.floats(min_value=0, max_value=600_000),
        single=st.floats(min_value=0.0, max_value=0.9),
        mean=st.floats(min_value=2.0, max_value=10.0),
    )
    def test_plan_always_valid(self, start, single, mean):
        plan = plan_session(0, start, single, mean, 60.0, 604800.0, make_rng(0))
        assert plan.request_times.size >= 1
        assert np.all(plan.request_times < 604800.0)
        assert np.all(plan.request_times >= start)
