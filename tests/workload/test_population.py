"""Tests for user-population generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.sampling import make_rng
from repro.trace.useragent import parse_user_agent
from repro.types import Continent, DeviceType
from repro.workload.population import CONTINENT_MIX, build_population
from repro.workload.profiles import profile_s1, profile_v2
from repro.workload.scale import ScaleConfig


@pytest.fixture(scope="module")
def s1_population():
    return build_population(profile_s1(), ScaleConfig.tiny(), make_rng(0))


class TestBuildPopulation:
    def test_size_matches_scale(self, s1_population):
        expected = ScaleConfig.tiny().users(profile_s1().paper_user_count)
        assert len(s1_population) == expected

    def test_user_ids_unique(self, s1_population):
        ids = [u.user_id for u in s1_population]
        assert len(set(ids)) == len(ids)

    def test_device_mix_exact_via_largest_remainder(self, s1_population):
        counts = s1_population.device_counts()
        total = len(s1_population)
        for device, share in profile_s1().device_mix.items():
            assert counts[device] / total == pytest.approx(share, abs=1.5 / total)

    def test_user_agents_parse_back_to_device(self, s1_population):
        for user in list(s1_population)[:200]:
            assert parse_user_agent(user.user_agent).device is user.device

    def test_all_continents_represented(self, s1_population):
        continents = {u.continent for u in s1_population}
        assert continents == set(Continent)

    def test_continent_mix_roughly_matches(self, s1_population):
        total = len(s1_population)
        for continent, share in CONTINENT_MIX.items():
            observed = sum(u.continent is continent for u in s1_population) / total
            assert observed == pytest.approx(share, abs=0.08)

    def test_incognito_fraction(self, s1_population):
        share = sum(u.incognito for u in s1_population) / len(s1_population)
        assert share == pytest.approx(profile_s1().incognito_fraction, abs=0.08)

    def test_addiction_propensity_in_unit_interval(self, s1_population):
        for user in s1_population:
            assert 0.0 <= user.addiction_propensity <= 1.0

    def test_activity_weights_heavy_tailed(self, s1_population):
        weights = np.sort([u.activity_weight for u in s1_population])[::-1]
        head = weights[: max(1, len(weights) // 20)].sum()
        assert head / weights.sum() > 0.15

    def test_deterministic_given_seed(self):
        a = build_population(profile_v2(), ScaleConfig.tiny(), make_rng(9))
        b = build_population(profile_v2(), ScaleConfig.tiny(), make_rng(9))
        assert [u.user_id for u in a] == [u.user_id for u in b]
        assert [u.device for u in a] == [u.device for u in b]


class TestSampling:
    def test_sample_visitor_prefers_heavy_users(self, s1_population):
        rng = make_rng(1)
        heavy = max(s1_population, key=lambda u: u.activity_weight)
        draws = s1_population.sample_visitors(rng, 3000)
        heavy_share = sum(u is heavy for u in draws) / len(draws)
        assert heavy_share > 1.5 / len(s1_population)

    def test_sample_visitors_size(self, s1_population):
        assert len(s1_population.sample_visitors(make_rng(2), 17)) == 17
