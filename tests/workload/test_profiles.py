"""Tests for the five paper-calibrated site profiles."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.types import ContentCategory, DeviceType, SiteKind, TrendClass
from repro.workload.profiles import (
    ALL_PROFILES,
    PROFILES_BY_NAME,
    SizeModel,
    profile_p2,
    profile_s1,
    profile_v1,
    profile_v2,
)


class TestBuiltinProfiles:
    def test_five_sites_in_paper_order(self):
        names = [p.name for p in ALL_PROFILES()]
        assert names == ["V-1", "V-2", "P-1", "P-2", "S-1"]

    def test_by_name_lookup(self):
        assert PROFILES_BY_NAME()["P-1"].kind is SiteKind.IMAGE

    def test_mixes_sum_to_one(self):
        for profile in ALL_PROFILES():
            assert sum(profile.object_mix.values()) == pytest.approx(1.0)
            assert sum(profile.request_mix.values()) == pytest.approx(1.0)
            assert sum(profile.device_mix.values()) == pytest.approx(1.0)
            assert sum(profile.trend_mix.values()) == pytest.approx(1.0)

    def test_paper_catalog_sizes(self):
        # Fig. 1 caption numbers.
        expected = {"V-1": 6_600, "V-2": 55_600, "P-1": 16_300, "P-2": 29_600, "S-1": 22_900}
        for profile in ALL_PROFILES():
            assert profile.paper_object_count == expected[profile.name]

    def test_v1_video_dominated(self):
        assert profile_v1().object_mix[ContentCategory.VIDEO] == pytest.approx(0.98)

    def test_v2_image_heavy_catalog(self):
        v2 = profile_v2()
        assert v2.object_mix[ContentCategory.IMAGE] == pytest.approx(0.84)
        assert v2.object_mix[ContentCategory.VIDEO] == pytest.approx(0.15)

    def test_v2_mostly_desktop(self):
        # Paper: >95% of V-2 visitors are desktop.
        assert profile_v2().device_mix[DeviceType.DESKTOP] > 0.95

    def test_s1_over_third_mobile(self):
        # Paper: more than one-third of S-1 visitors on smartphone/misc.
        assert profile_s1().mobile_fraction > 1 / 3

    def test_v1_anti_diurnal_peak(self):
        # Paper: V-1 peaks late-night/early-morning.
        assert profile_v1().peak_local_hour in range(0, 6)

    def test_v1_has_most_pronounced_cycle(self):
        v1 = profile_v1()
        for profile in ALL_PROFILES():
            if profile.name != "V-1":
                assert profile.diurnal_amplitude < v1.diurnal_amplitude

    def test_p2_largest_videos(self):
        p2_median = profile_p2().size_models[ContentCategory.VIDEO].median_bytes
        for profile in ALL_PROFILES():
            if profile.name != "P-2":
                assert profile.size_models[ContentCategory.VIDEO].median_bytes < p2_median

    def test_p2_trend_mix_matches_dendrogram(self):
        # Fig. 8(b): 61% diurnal, 25% long-lived, 14% flash-crowd.
        mix = profile_p2().trend_mix
        assert mix[TrendClass.DIURNAL] == pytest.approx(0.61)
        assert mix[TrendClass.LONG_LIVED] == pytest.approx(0.25)
        assert mix[TrendClass.FLASH_CROWD] == pytest.approx(0.14)

    def test_video_sites_more_addictive_than_image(self):
        for profile in ALL_PROFILES():
            assert profile.addiction_video > profile.addiction_image

    def test_s1_smallest_cache_priority(self):
        s1 = profile_s1()
        for profile in ALL_PROFILES():
            if profile.name != "S-1":
                assert profile.cache_priority > s1.cache_priority

    def test_image_sites_have_more_single_request_sessions(self):
        by_name = PROFILES_BY_NAME()
        for image_site in ("P-1", "P-2", "S-1"):
            for video_site in ("V-1", "V-2"):
                assert by_name[image_site].session_single_fraction > by_name[video_site].session_single_fraction

    def test_mean_requests_per_session_mixes_singles(self):
        profile = profile_v1()
        expected = profile.session_single_fraction + (1 - profile.session_single_fraction) * profile.session_mean_requests
        assert profile.mean_requests_per_session == pytest.approx(expected)


class TestValidation:
    def test_bad_object_mix_rejected(self):
        profile = profile_v1()
        with pytest.raises(ConfigError):
            dataclasses.replace(profile, object_mix={ContentCategory.VIDEO: 0.5})

    def test_bad_device_mix_rejected(self):
        profile = profile_v1()
        with pytest.raises(ConfigError):
            dataclasses.replace(profile, device_mix={DeviceType.DESKTOP: 0.5, DeviceType.ANDROID: 0.4, DeviceType.IOS: 0.05, DeviceType.MISC: 0.0})

    def test_bad_peak_hour_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(profile_v1(), peak_local_hour=24)

    def test_amplitude_below_one_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(profile_v1(), diurnal_amplitude=0.5)

    def test_single_fraction_bounds(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(profile_v1(), session_single_fraction=1.0)

    def test_multi_mean_below_two_rejected(self):
        with pytest.raises(ConfigError):
            dataclasses.replace(profile_v1(), session_mean_requests=1.5)


class TestSizeModel:
    def test_positive_median_required(self):
        with pytest.raises(ConfigError):
            SizeModel(median_bytes=0, sigma=1.0)

    def test_positive_sigma_required(self):
        with pytest.raises(ConfigError):
            SizeModel(median_bytes=100, sigma=0)

    def test_bimodal_split_bounds(self):
        with pytest.raises(ConfigError):
            SizeModel(median_bytes=100, sigma=1.0, bimodal_split=1.0)
