"""Tests for the workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.types import ContentCategory
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import ALL_PROFILES, profile_v1, profile_v2
from repro.workload.scale import ScaleConfig


@pytest.fixture(scope="module")
def v1_workload():
    generator = WorkloadGenerator(profiles=(profile_v1(),), scale=ScaleConfig.tiny(), seed=11)
    return generator.generate_site(profile_v1())


class TestGenerateSite:
    def test_requests_sorted_by_time(self, v1_workload):
        times = [r.timestamp for r in v1_workload.requests]
        assert times == sorted(times)

    def test_requests_within_trace_window(self, v1_workload):
        duration = ScaleConfig.tiny().duration_seconds
        for request in v1_workload.requests:
            assert 0.0 <= request.timestamp < duration

    def test_request_volume_near_target(self, v1_workload):
        target = ScaleConfig.tiny().requests(profile_v1().paper_request_count)
        # Binges add a small overhead on top of the session-driven volume.
        assert 0.7 * target <= v1_workload.request_count <= 1.6 * target

    def test_objects_only_requested_after_birth(self, v1_workload):
        for request in v1_workload.requests:
            assert request.timestamp >= request.obj.birth_time - 1e-6

    def test_requests_reference_catalog_objects(self, v1_workload):
        for request in v1_workload.requests[:500]:
            assert request.obj.object_id in v1_workload.catalog

    def test_requests_reference_population_users(self, v1_workload):
        user_ids = {u.user_id for u in v1_workload.population}
        for request in v1_workload.requests[:500]:
            assert request.user.user_id in user_ids

    def test_category_request_mix_close_to_profile(self, v1_workload):
        profile = profile_v1()
        counts = {category: 0 for category in ContentCategory}
        for request in v1_workload.requests:
            counts[request.obj.category] += 1
        total = sum(counts.values())
        video_share = counts[ContentCategory.VIDEO] / total
        assert video_share == pytest.approx(profile.request_mix[ContentCategory.VIDEO], abs=0.07)

    def test_repeat_requests_present(self, v1_workload):
        # Addiction: some requests are marked repeats.
        repeats = sum(r.is_repeat for r in v1_workload.requests)
        assert repeats > 0

    def test_determinism(self):
        a = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=3).generate_site(profile_v2())
        b = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=3).generate_site(profile_v2())
        assert a.request_count == b.request_count
        assert [(r.timestamp, r.obj.object_id, r.user.user_id) for r in a.requests[:200]] == [
            (r.timestamp, r.obj.object_id, r.user.user_id) for r in b.requests[:200]
        ]

    def test_different_seeds_differ(self):
        a = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=3).generate_site(profile_v2())
        b = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=4).generate_site(profile_v2())
        assert [r.object_id for r in (req.obj for req in a.requests[:100])] != [
            r.object_id for r in (req.obj for req in b.requests[:100])
        ]


class TestGenerateAll:
    def test_empty_profiles_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(profiles=())

    def test_all_sites_generated(self):
        generator = WorkloadGenerator(scale=ScaleConfig.tiny(), seed=0)
        workloads = generator.generate_all()
        assert set(workloads) == {p.name for p in ALL_PROFILES()}

    def test_merged_requests_globally_sorted(self):
        generator = WorkloadGenerator(scale=ScaleConfig.tiny(), seed=0)
        workloads = generator.generate_all()
        merged = list(generator.merged_requests(workloads))
        times = [r.timestamp for r in merged]
        assert times == sorted(times)
        assert len(merged) == sum(w.request_count for w in workloads.values())

    def test_v1_dominates_request_volume(self):
        # Paper: V-1 has by far the most requests (3.1M of ~5.4M total).
        generator = WorkloadGenerator(scale=ScaleConfig.tiny(), seed=0)
        workloads = generator.generate_all()
        v1 = workloads["V-1"].request_count
        for name, workload in workloads.items():
            if name != "V-1":
                assert workload.request_count < v1


class TestAddictionCalibration:
    def test_video_objects_gain_dedicated_fans(self, v1_workload):
        # Count per-(object,user) request pairs; a healthy fraction of video
        # objects must have a single user with >10 requests (Fig. 14).
        per_pair: dict[tuple[str, str], int] = {}
        for request in v1_workload.requests:
            if request.obj.category is ContentCategory.VIDEO:
                key = (request.obj.object_id, request.user.user_id)
                per_pair[key] = per_pair.get(key, 0) + 1
        fanned_objects = {obj for (obj, _user), count in per_pair.items() if count > 10}
        requested_objects = {obj for (obj, _user) in per_pair}
        assert len(fanned_objects) / len(requested_objects) >= 0.08
