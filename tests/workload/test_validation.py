"""Tests for workload calibration validation."""

from __future__ import annotations

import pytest

from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import ALL_PROFILES, profile_v2
from repro.workload.scale import ScaleConfig
from repro.workload.validation import CalibrationCheck, validate_workload


@pytest.fixture(scope="module")
def v2_workload():
    generator = WorkloadGenerator(profiles=(profile_v2(),), scale=ScaleConfig.tiny(), seed=13)
    return generator.generate_site(profile_v2())


class TestCalibrationCheck:
    def test_ok_within_tolerance(self):
        check = CalibrationCheck("m", target=0.5, measured=0.52, tolerance=0.05)
        assert check.ok
        assert check.error == pytest.approx(0.02)

    def test_off_outside_tolerance(self):
        check = CalibrationCheck("m", target=0.5, measured=0.6, tolerance=0.05)
        assert not check.ok


class TestValidateWorkload:
    def test_v2_workload_calibrated(self, v2_workload):
        report = validate_workload(v2_workload)
        assert report.ok, "calibration drifted:\n" + report.render()

    def test_report_covers_expected_metrics(self, v2_workload):
        report = validate_workload(v2_workload)
        metrics = {check.metric for check in report.checks}
        assert "catalog share video" in metrics
        assert "device share desktop" in metrics
        assert "request share image" in metrics
        assert "pre-existing fraction" in metrics
        assert any(m.startswith("trend share") for m in metrics)
        assert "requests sorted by time" in metrics

    def test_failures_listing(self, v2_workload):
        report = validate_workload(v2_workload)
        assert report.failures() == [c for c in report.checks if not c.ok]

    def test_all_paper_sites_calibrated(self):
        generator = WorkloadGenerator(scale=ScaleConfig.tiny(), seed=17)
        for profile in ALL_PROFILES():
            workload = generator.generate_site(profile)
            report = validate_workload(workload)
            assert report.ok, f"{profile.name} calibration drifted:\n" + report.render()
