"""Tests for parallel (multi-process) workload generation."""

from __future__ import annotations

import pytest

from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import profile_p1, profile_v1
from repro.workload.scale import ScaleConfig


@pytest.fixture(scope="module")
def generator():
    return WorkloadGenerator(
        profiles=(profile_v1(), profile_p1()), scale=ScaleConfig.tiny(), seed=29
    )


class TestParallelGeneration:
    def test_parallel_equals_serial(self, generator):
        serial = generator.generate_all(parallel=False)
        parallel = generator.generate_all(parallel=True, max_workers=2)
        assert set(serial) == set(parallel)
        for name in serial:
            a, b = serial[name], parallel[name]
            assert a.request_count == b.request_count
            assert [o.object_id for o in a.catalog] == [o.object_id for o in b.catalog]
            assert [
                (r.timestamp, r.obj.object_id, r.user.user_id) for r in a.requests[:300]
            ] == [(r.timestamp, r.obj.object_id, r.user.user_id) for r in b.requests[:300]]

    def test_parallel_results_feed_simulator(self, generator):
        from repro.cdn.simulator import CdnSimulator, SimulationConfig

        workloads = generator.generate_all(parallel=True, max_workers=2)
        simulator = CdnSimulator(profiles=generator.profiles, config=SimulationConfig(seed=30))
        records = list(simulator.run(generator.merged_requests(workloads)))
        assert records
