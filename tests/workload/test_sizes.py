"""Tests for the object-size models (Fig. 5 calibration)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.ecdf import EmpiricalCDF
from repro.stats.sampling import make_rng
from repro.types import ContentCategory, TrendClass
from repro.workload.profiles import SizeModel, profile_v1
from repro.workload.sizes import (
    MAX_OBJECT_BYTES,
    MIN_OBJECT_BYTES,
    VIDEO_TREND_SIZE_FACTOR,
    sample_extension,
    sample_object_size,
    sample_object_sizes,
)


class TestSampleObjectSize:
    def test_within_global_envelope(self):
        model = SizeModel(median_bytes=1e7, sigma=2.0)
        rng = make_rng(0)
        for _ in range(200):
            size = sample_object_size(model, ContentCategory.VIDEO, TrendClass.OUTLIER, rng)
            assert MIN_OBJECT_BYTES <= size <= MAX_OBJECT_BYTES

    def test_video_median_near_model(self):
        model = SizeModel(median_bytes=10_000_000, sigma=0.5)
        sizes = sample_object_sizes(model, ContentCategory.VIDEO, [TrendClass.OUTLIER] * 3000, make_rng(1))
        median = float(np.median(sizes))
        assert 7_000_000 < median < 14_000_000

    def test_majority_of_videos_above_1mb(self):
        # Paper Fig. 5(a): the majority of video objects exceed 1 MB.
        model = profile_v1().size_models[ContentCategory.VIDEO]
        trends = [TrendClass.DIURNAL, TrendClass.LONG_LIVED, TrendClass.SHORT_LIVED] * 1000
        sizes = sample_object_sizes(model, ContentCategory.VIDEO, trends, make_rng(2))
        assert np.mean(sizes > 1_000_000) > 0.75

    def test_images_mostly_below_1mb(self):
        # Paper Fig. 5(b): image objects are less than 1 MB.
        model = SizeModel(median_bytes=200_000, sigma=0.9, bimodal_split=0.55)
        sizes = sample_object_sizes(model, ContentCategory.IMAGE, [TrendClass.DIURNAL] * 3000, make_rng(3))
        assert np.mean(sizes < 1_000_000) > 0.85

    def test_image_bimodality(self):
        # Thumbnails + large photos -> bi-modal size distribution.
        model = SizeModel(median_bytes=400_000, sigma=0.5, bimodal_split=0.5, thumb_median_bytes=15_000, thumb_sigma=0.4)
        sizes = sample_object_sizes(model, ContentCategory.IMAGE, [TrendClass.DIURNAL] * 4000, make_rng(4))
        assert EmpiricalCDF(sizes).is_bimodal(split=80_000)

    def test_video_trend_size_ordering(self):
        # Paper Section IV-B: long-lived largest, diurnal smallest.
        model = SizeModel(median_bytes=10_000_000, sigma=0.3)
        medians = {}
        for trend in (TrendClass.DIURNAL, TrendClass.SHORT_LIVED, TrendClass.LONG_LIVED):
            sizes = sample_object_sizes(model, ContentCategory.VIDEO, [trend] * 2000, make_rng(5))
            medians[trend] = float(np.median(sizes))
        assert medians[TrendClass.DIURNAL] < medians[TrendClass.SHORT_LIVED] < medians[TrendClass.LONG_LIVED]

    def test_trend_factor_not_applied_to_images(self):
        model = SizeModel(median_bytes=100_000, sigma=0.2)
        diurnal = sample_object_sizes(model, ContentCategory.IMAGE, [TrendClass.DIURNAL] * 2000, make_rng(6))
        long_lived = sample_object_sizes(model, ContentCategory.IMAGE, [TrendClass.LONG_LIVED] * 2000, make_rng(6))
        assert np.median(diurnal) == pytest.approx(np.median(long_lived), rel=0.15)

    def test_vectorised_matches_scalar_distribution(self):
        model = SizeModel(median_bytes=1_000_000, sigma=0.8)
        vector = sample_object_sizes(model, ContentCategory.VIDEO, [TrendClass.OUTLIER] * 2000, make_rng(7))
        scalar = [sample_object_size(model, ContentCategory.VIDEO, TrendClass.OUTLIER, make_rng(i)) for i in range(500)]
        assert np.median(vector) == pytest.approx(np.median(scalar), rel=0.3)

    def test_all_trend_factors_defined(self):
        assert set(VIDEO_TREND_SIZE_FACTOR) == set(TrendClass)


class TestSampleExtension:
    def test_extension_matches_category(self):
        rng = make_rng(0)
        from repro.types import category_for_extension

        for category in ContentCategory:
            for _ in range(50):
                ext = sample_extension(category, rng)
                assert category_for_extension(ext) is category

    def test_prefer_gif_raises_gif_share(self):
        rng = make_rng(1)
        plain = sum(sample_extension(ContentCategory.IMAGE, rng) == "gif" for _ in range(2000)) / 2000
        rng = make_rng(1)
        boosted = sum(sample_extension(ContentCategory.IMAGE, rng, prefer_gif=True) == "gif" for _ in range(2000)) / 2000
        assert boosted > plain
