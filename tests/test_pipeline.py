"""Tests for the end-to-end pipeline glue."""

from __future__ import annotations

import pytest

from repro.cdn.simulator import SimulationConfig
from repro.core.report import Study
from repro.pipeline import generate_trace_file, run_pipeline, run_study
from repro.trace.reader import TraceReader
from repro.workload.profiles import profile_v1
from repro.workload.scale import ScaleConfig


class TestRunPipeline:
    def test_produces_all_components(self, pipeline_result):
        assert len(pipeline_result.records) > 1000
        assert set(pipeline_result.workloads) == {"V-1", "V-2", "P-1", "P-2", "S-1"}
        assert len(pipeline_result.dataset) == len(pipeline_result.records)
        assert set(pipeline_result.catalogs) == set(pipeline_result.workloads)

    def test_capacity_derived_from_catalogs(self, pipeline_result):
        catalog_bytes = sum(c.total_bytes() for c in pipeline_result.catalogs.values())
        edge = next(iter(pipeline_result.simulator.edges.values()))
        total_capacity = sum(c.capacity_bytes for c in edge.caches())
        assert 0.1 * catalog_bytes < total_capacity < catalog_bytes

    def test_single_site_pipeline(self):
        result = run_pipeline(seed=1, scale=ScaleConfig.tiny(), profiles=(profile_v1(),))
        assert set(result.workloads) == {"V-1"}
        assert result.dataset.sites == ["V-1"]

    def test_deterministic(self):
        scale = ScaleConfig.tiny()
        a = run_pipeline(seed=3, scale=scale, profiles=(profile_v1(),))
        b = run_pipeline(seed=3, scale=scale, profiles=(profile_v1(),))
        assert a.records == b.records

    def test_explicit_sim_config_respected(self):
        config = SimulationConfig(seed=9, cache_policy="fifo", cache_capacity_bytes=10**9, warm_caches=False)
        result = run_pipeline(seed=1, scale=ScaleConfig.tiny(), profiles=(profile_v1(),), sim_config=config)
        edge = next(iter(result.simulator.edges.values()))
        assert edge.large_cache.policy.name == "fifo"


class TestRunStudy:
    def test_returns_report(self):
        _, report = run_study(
            seed=1,
            scale=ScaleConfig.tiny(),
            profiles=(profile_v1(),),
            study=Study(run_clustering=False),
        )
        text = report.render_text()
        assert "V-1" in text


class TestGenerateTraceFile:
    def test_writes_readable_trace(self, tmp_path):
        path = tmp_path / "trace.csv"
        written = generate_trace_file(path, seed=1, scale=ScaleConfig.tiny(), profiles=(profile_v1(),))
        assert written > 0
        count = sum(1 for _ in TraceReader(path))
        assert count == written
