"""Tests for the end-to-end pipeline glue."""

from __future__ import annotations

import pytest

from repro.cdn.simulator import SimulationConfig
from repro.core.report import Study
from repro.errors import StorelessDatasetError
from repro.pipeline import generate_trace_file, generate_trace_plan, run_pipeline, run_study
from repro.trace.reader import TraceReader
from repro.workload.profiles import profile_v1
from repro.workload.scale import ScaleConfig


class TestRunPipeline:
    def test_produces_all_components(self, pipeline_result):
        assert len(pipeline_result.records) > 1000
        assert set(pipeline_result.workloads) == {"V-1", "V-2", "P-1", "P-2", "S-1"}
        assert len(pipeline_result.dataset) == len(pipeline_result.records)
        assert set(pipeline_result.catalogs) == set(pipeline_result.workloads)

    def test_capacity_derived_from_catalogs(self, pipeline_result):
        catalog_bytes = sum(c.total_bytes() for c in pipeline_result.catalogs.values())
        edge = next(iter(pipeline_result.simulator.edges.values()))
        total_capacity = sum(c.capacity_bytes for c in edge.caches())
        assert 0.1 * catalog_bytes < total_capacity < catalog_bytes

    def test_single_site_pipeline(self):
        result = run_pipeline(seed=1, scale=ScaleConfig.tiny(), profiles=(profile_v1(),))
        assert set(result.workloads) == {"V-1"}
        assert result.dataset.sites == ["V-1"]

    def test_deterministic(self):
        scale = ScaleConfig.tiny()
        a = run_pipeline(seed=3, scale=scale, profiles=(profile_v1(),))
        b = run_pipeline(seed=3, scale=scale, profiles=(profile_v1(),))
        assert a.records == b.records

    def test_explicit_sim_config_respected(self):
        config = SimulationConfig(seed=9, cache_policy="fifo", cache_capacity_bytes=10**9, warm_caches=False)
        result = run_pipeline(seed=1, scale=ScaleConfig.tiny(), profiles=(profile_v1(),), sim_config=config)
        edge = next(iter(result.simulator.edges.values()))
        assert edge.large_cache.policy.name == "fifo"


class TestRunStudy:
    def test_returns_report(self):
        _, report = run_study(
            seed=1,
            scale=ScaleConfig.tiny(),
            profiles=(profile_v1(),),
            study=Study(run_clustering=False),
        )
        text = report.render_text()
        assert "V-1" in text


class TestGenerateTraceFile:
    def test_writes_readable_trace(self, tmp_path):
        path = tmp_path / "trace.csv"
        written = generate_trace_file(path, seed=1, scale=ScaleConfig.tiny(), profiles=(profile_v1(),))
        assert written > 0
        count = sum(1 for _ in TraceReader(path))
        assert count == written


class TestStorelessPipeline:
    def test_storeless_study_matches_eager_report(self):
        kwargs = dict(
            seed=1, scale=ScaleConfig.tiny(), profiles=(profile_v1(),),
            study=Study(run_clustering=False),
        )
        _, eager = run_study(**kwargs)
        result, storeless = run_study(keep_store=False, sim_workers=2, **kwargs)
        assert storeless.to_summary_dict() == eager.to_summary_dict()
        assert not result.dataset.has_store

    def test_row_level_access_raises_storeless_error(self):
        result = run_pipeline(
            seed=1, scale=ScaleConfig.tiny(), profiles=(profile_v1(),), keep_store=False
        )
        with pytest.raises(StorelessDatasetError):
            result.batches
        with pytest.raises(StorelessDatasetError):
            result.records

    def test_row_level_access_works_when_store_kept(self, pipeline_result):
        assert pipeline_result.batches
        assert len(pipeline_result.records) == len(pipeline_result.dataset)

    def test_sim_worker_knobs_threaded_through(self):
        result = run_pipeline(
            seed=1, scale=ScaleConfig.tiny(), profiles=(profile_v1(),),
            sim_workers=2, sim_queue_depth=256,
        )
        stats = result.simulator.sim_stats
        assert stats is not None and stats.workers == 2

    def test_result_carries_stage_telemetry(self, pipeline_result):
        names = [s.name for s in pipeline_result.stage_stats]
        assert names == ["generate", "simulate", "ingest"]
        assert pipeline_result.render_stage_stats().startswith("dataflow plan:")

    def test_env_knobs_apply_when_kwargs_omitted(self, monkeypatch):
        explicit = run_pipeline(seed=4, scale=ScaleConfig.tiny(), profiles=(profile_v1(),))
        monkeypatch.setenv("REPRO_SEED", "4")
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        from_env = run_pipeline(profiles=(profile_v1(),))
        assert from_env.records == explicit.records


class TestGenerateTracePlan:
    def test_streams_to_disk_with_bounded_resident_rows(self, tmp_path):
        path = tmp_path / "trace.bin"
        result = generate_trace_plan(
            path, seed=1, scale=ScaleConfig.tiny(), batch_size=512
        )
        assert result.rows_written == sum(1 for _ in TraceReader(path))
        assert result.rows_written > 2048
        by_name = {s.name: s for s in result.stage_stats}
        # The tee holds at most one batch resident: the trace never
        # materialises as a list on the way to disk.
        assert by_name["write_trace"].peak_resident_rows <= 512
        assert by_name["write_trace"].batches >= result.rows_written // 512
