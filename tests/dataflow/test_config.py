"""RunConfig: the knob table, precedence, and validation.

The precedence tests iterate :data:`repro.dataflow.config.KNOBS` so a knob
added without a test case here fails loudly.
"""

from __future__ import annotations

import pytest

from repro.dataflow import KNOBS, RunConfig
from repro.errors import ConfigError, ReproError
from repro.workload.scale import ScaleConfig

#: Per-knob values for the precedence ladder.  Each is distinct from the
#: layer below it so every assertion actually demonstrates an override:
#: (env string, parsed env value, kwarg value, cli value).
PRECEDENCE_CASES: dict[str, tuple[str, object, object, object]] = {
    "seed": ("5", 5, 6, 7),
    "scale": ("tiny", "tiny", "medium", "tiny"),
    "batch_size": ("1024", 1024, 2048, 4096),
    "keep_store": ("false", False, True, False),
    "projection": ("off", False, True, False),
    "engine": ("record", "record", "batch", "record"),
    "sim_workers": ("2", 2, 3, 4),
    "sim_queue_depth": ("16", 16, 32, 64),
    "dtw_kernel": ("numpy", "numpy", "c", "numba"),
    "dtw_workers": ("2", 2, 3, 4),
    "run_clustering": ("no", False, True, False),
    "memory_budget": ("1048576", 1048576, 2097152, 4194304),
    "spill_dir": (" /tmp/spill-Env ", "/tmp/spill-Env", "/tmp/spill-kw", "/tmp/spill-cli"),
}


def test_every_knob_has_a_precedence_case():
    assert {knob.name for knob in KNOBS} == set(PRECEDENCE_CASES)


def test_knob_table_is_well_formed():
    for knob in KNOBS:
        assert knob.env.startswith("REPRO_")
        assert knob.help
        # The default round-trips through validation.
        assert getattr(RunConfig(), knob.name) == knob.default


class TestPrecedence:
    """default < env < kwarg < CLI, with None falling through each layer."""

    @pytest.mark.parametrize("knob", KNOBS, ids=lambda k: k.name)
    def test_default_when_nothing_specified(self, knob):
        config = RunConfig.resolve(env={})
        assert getattr(config, knob.name) == knob.default

    @pytest.mark.parametrize("knob", KNOBS, ids=lambda k: k.name)
    def test_env_beats_default(self, knob):
        raw, parsed, _, _ = PRECEDENCE_CASES[knob.name]
        config = RunConfig.resolve(env={knob.env: raw})
        assert getattr(config, knob.name) == parsed
        assert parsed != knob.default

    @pytest.mark.parametrize("knob", KNOBS, ids=lambda k: k.name)
    def test_kwarg_beats_env(self, knob):
        raw, parsed, kwarg, _ = PRECEDENCE_CASES[knob.name]
        config = RunConfig.resolve(env={knob.env: raw}, **{knob.name: kwarg})
        assert getattr(config, knob.name) == kwarg
        assert kwarg != parsed

    @pytest.mark.parametrize("knob", KNOBS, ids=lambda k: k.name)
    def test_cli_beats_kwarg(self, knob):
        raw, _, kwarg, cli = PRECEDENCE_CASES[knob.name]
        config = RunConfig.resolve(
            env={knob.env: raw}, cli={knob.name: cli}, **{knob.name: kwarg}
        )
        assert getattr(config, knob.name) == cli
        assert cli != kwarg

    @pytest.mark.parametrize("knob", KNOBS, ids=lambda k: k.name)
    def test_none_falls_through_to_env(self, knob):
        raw, parsed, _, _ = PRECEDENCE_CASES[knob.name]
        config = RunConfig.resolve(
            env={knob.env: raw}, cli={knob.name: None}, **{knob.name: None}
        )
        assert getattr(config, knob.name) == parsed

    @pytest.mark.parametrize("knob", KNOBS, ids=lambda k: k.name)
    def test_empty_env_string_means_unset(self, knob):
        config = RunConfig.resolve(env={knob.env: ""})
        assert getattr(config, knob.name) == knob.default

    def test_os_environ_is_the_default_env_layer(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "41")
        assert RunConfig.resolve().seed == 41


class TestValidation:
    def test_unknown_kwarg_rejected(self):
        with pytest.raises(ConfigError, match="unknown RunConfig knob"):
            RunConfig.resolve(env={}, wrokers=2)

    def test_unknown_cli_knob_rejected(self):
        with pytest.raises(ConfigError, match="unknown RunConfig knob"):
            RunConfig.resolve(env={}, cli={"speed": 1})

    @pytest.mark.parametrize(
        "overrides",
        [
            {"scale": "huge"},
            {"engine": "rows"},
            {"dtw_kernel": "fortran"},
            {"batch_size": 0},
            {"sim_workers": -1},
            {"sim_queue_depth": 0},
            {"dtw_workers": 0},
            {"keep_store": "yes"},
            {"projection": "on"},
            {"run_clustering": 1},
            {"seed": "0"},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigError):
            RunConfig.resolve(env={}, **overrides)

    @pytest.mark.parametrize(
        ("env", "raw"),
        [("REPRO_SEED", "three"), ("REPRO_KEEP_STORE", "maybe"), ("REPRO_SIM_WORKERS", "2.5")],
    )
    def test_unparseable_env_value_rejected(self, env, raw):
        with pytest.raises(ConfigError, match=env):
            RunConfig.resolve(env={env: raw})

    def test_config_error_is_a_repro_error(self):
        assert issubclass(ConfigError, ReproError)


class TestScaleHandling:
    def test_scale_config_resolves_names(self):
        assert RunConfig.resolve(env={}, scale="tiny").scale_config() == ScaleConfig.tiny()
        assert RunConfig.resolve(env={}).scale_config() == ScaleConfig.small()

    def test_scale_config_passes_instances_through(self):
        scale = ScaleConfig.tiny()
        config = RunConfig.resolve(env={}, scale=scale)
        assert config.scale_config() is scale


class TestReplacing:
    def test_overrides_applied_and_none_ignored(self):
        base = RunConfig.resolve(env={})
        changed = base.replacing(seed=9, keep_store=None)
        assert changed.seed == 9
        assert changed.keep_store == base.keep_store
        assert base.seed == 0  # the original is untouched

    def test_no_changes_returns_self(self):
        base = RunConfig.resolve(env={})
        assert base.replacing(seed=None) is base

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigError, match="unknown RunConfig knob"):
            RunConfig.resolve(env={}).replacing(depth=3)

    def test_revalidates(self):
        with pytest.raises(ConfigError):
            RunConfig.resolve(env={}).replacing(sim_workers=0)


class TestDescribe:
    def test_one_row_per_knob_in_table_order(self):
        rows = RunConfig.resolve(env={}).describe()
        assert [row[0] for row in rows] == [knob.name for knob in KNOBS]
        assert [row[1] for row in rows] == [knob.env for knob in KNOBS]
        for row in rows:
            assert len(row) == 4 and all(isinstance(cell, str) for cell in row[1:])

    def test_scale_config_instances_render_by_class_name(self):
        rows = RunConfig.resolve(env={}, scale=ScaleConfig.tiny()).describe()
        scale_row = next(row for row in rows if row[0] == "scale")
        assert scale_row[2] == "ScaleConfig"
