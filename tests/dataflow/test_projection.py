"""Projection pushdown: pruning equivalence, build-time validation, telemetry.

The contract under test (DESIGN.md §10): stages declare the batch columns
they read, the plan prunes everything else once at the batch source, and
the pruned run is *bit-identical* to the unpruned one — reports and
written traces — across seeds, worker counts, queue depths and store
modes.  Declarations that cannot be satisfied fail at build time with
:class:`~repro.errors.ProjectionError` naming the stage and the missing
column, never silently at drain time.
"""

from __future__ import annotations

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.simulator import CdnSimulator, sized_simulation_config
from repro.core.aggregate import (
    ContentCompositionPass,
    DeviceCompositionPass,
    HourlyVolumePass,
    TrafficCompositionPass,
)
from repro.core.caching import ResponseCodePass
from repro.core.dataset import INGEST_COLUMNS, IngestStage, TraceDataset
from repro.core.accumulate import AGGREGATE_COLUMNS, SCAN_TABLE_COLUMNS
from repro.core.passes import PassSweepStage
from repro.core.report import Study, StudyStage
from repro.core.users import (
    AddictionPass,
    InterarrivalPass,
    RepeatedAccessPass,
    SessionLengthPass,
)
from repro.dataflow import FULL_SCHEMA, Plan, RunConfig, StageStats, render_stage_stats
from repro.errors import PlanError, ProjectionError
from repro.trace.batch import ALL_COLUMNS, PrunedColumn, RecordBatch
from repro.trace.writer import TraceWriteStage, write_trace_batches
from repro.types import ContentCategory
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import profile_p1, profile_v1
from repro.workload.scale import ScaleConfig

PROFILES = (profile_v1(), profile_p1())


def tiny_config(**overrides) -> RunConfig:
    return RunConfig.resolve(env={}, scale=ScaleConfig.tiny(), **overrides)


def simulated_batches(seed: int = 5):
    """A tiny simulated trace as a list of full-schema batches."""
    generator = WorkloadGenerator(profiles=PROFILES, scale=ScaleConfig.tiny(), seed=seed)
    workloads = generator.generate_all()
    catalogs = {name: workload.catalog for name, workload in workloads.items()}
    sim_config = sized_simulation_config(catalogs.values(), seed)
    simulator = CdnSimulator(profiles=generator.profiles, config=sim_config)
    simulator.warm(catalogs.values())
    return list(simulator.run_batches(generator.merged_request_batches(workloads)))


@pytest.fixture(scope="module")
def batches():
    return simulated_batches()


class ProbeStage:
    """Pass-through stage with an explicit column declaration, recording
    every batch that flows through it."""

    def __init__(self, required: frozenset[str] = frozenset(), name: str = "probe"):
        self.name = name
        self._required = required
        self.seen: list[RecordBatch] = []

    def required_columns(self, config) -> frozenset[str]:
        return self._required

    def connect(self, upstream, config):
        return self._tee(upstream)

    def _tee(self, upstream):
        for batch in upstream:
            self.seen.append(batch)
            yield batch


class UndeclaredProbe:
    """Pass-through stage with NO required_columns hook (legacy stage)."""

    name = "undeclared"

    def __init__(self):
        self.seen: list[RecordBatch] = []

    def connect(self, upstream, config):
        return self._tee(upstream)

    def _tee(self, upstream):
        for batch in upstream:
            self.seen.append(batch)
            yield batch


#: Pruned-vs-unpruned reports memoised per (seed, keep_store) so the
#: hypothesis grid recomputes only the pruned side per example.
_unpruned_reports: dict[tuple[int, bool], object] = {}


class TestPruningEquivalence:
    """The acceptance property: pruned plans are bit-identical to unpruned."""

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2),
        sim_workers=st.integers(min_value=1, max_value=2),
        sim_queue_depth=st.sampled_from([64, 8192]),
        keep_store=st.booleans(),
    )
    def test_reports_bit_identical_across_grid(
        self, seed, sim_workers, sim_queue_depth, keep_store
    ):
        def build(projection: bool):
            config = tiny_config(
                seed=seed,
                keep_store=keep_store,
                sim_workers=sim_workers,
                sim_queue_depth=sim_queue_depth,
                run_clustering=False,
                projection=projection,
            )
            result = Plan(config).generate(PROFILES).simulate().ingest().analyze().run()
            assert result.report is not None
            return result.report

        pruned = build(projection=True)
        key = (seed, keep_store)
        if key not in _unpruned_reports:
            _unpruned_reports[key] = build(projection=False)
        assert pruned.to_summary_dict() == _unpruned_reports[key].to_summary_dict()

    def test_written_traces_byte_identical(self, tmp_path):
        # A write tee pins the full schema, so the pruned plan must write
        # the exact same bytes the unpruned one does.
        paths = {}
        for projection in (True, False):
            path = tmp_path / f"projection_{projection}.bin"
            config = tiny_config(seed=4, keep_store=False, projection=projection)
            result = (
                Plan(config)
                .generate(PROFILES)
                .simulate()
                .write_trace(path)
                .ingest()
                .analyze()
                .run()
            )
            assert result.report is not None
            paths[projection] = path
        assert paths[True].read_bytes() == paths[False].read_bytes()

    def test_write_tee_pins_full_schema(self, tmp_path):
        config = tiny_config(seed=4, keep_store=False, projection=True)
        result = (
            Plan(config)
            .generate(PROFILES)
            .simulate()
            .write_trace(tmp_path / "t.bin")
            .ingest()
            .run()
        )
        by_name = {s.name: s for s in result.stage_stats}
        assert by_name["simulate"].bytes_pruned == 0
        assert by_name["simulate"].columns_out == len(FULL_SCHEMA)

    def test_read_trace_plan_bit_identical(self, tmp_path, batches):
        path = tmp_path / "trace.bin"
        write_trace_batches(batches, path)
        reports = {}
        for projection in (True, False):
            config = tiny_config(
                seed=5, keep_store=False, run_clustering=False, projection=projection
            )
            result = Plan(config).read_trace(path).ingest().analyze().run()
            assert result.report is not None
            reports[projection] = result.report
        assert reports[True].to_summary_dict() == reports[False].to_summary_dict()

    def test_source_batches_plan_bit_identical(self, batches):
        reports = {}
        for projection in (True, False):
            config = tiny_config(
                seed=5, keep_store=False, run_clustering=False, projection=projection
            )
            result = Plan(config).source_batches(batches).ingest().analyze().run()
            reports[projection] = result.report.to_summary_dict()
        assert reports[True] == reports[False]


class TestBuildTimeValidation:
    """Unsatisfiable column dependencies fail before any block flows."""

    def storeless(self, **overrides):
        return tiny_config(keep_store=False, **overrides)

    def test_projection_error_is_a_plan_error(self):
        assert issubclass(ProjectionError, PlanError)

    @pytest.mark.parametrize("only", sorted(ALL_COLUMNS))
    def test_single_column_source_cannot_feed_ingest(self, only, batches):
        # Whatever single column the source provides, the storeless ingest
        # needs more — the plan must refuse to build.
        plan = Plan(self.storeless()).source_batches(batches, columns={only}).ingest()
        with pytest.raises(ProjectionError, match="'ingest' requires column"):
            plan.run()

    def test_error_names_stage_and_missing_column(self, batches):
        provided = INGEST_COLUMNS - {"user_id"}
        plan = Plan(self.storeless()).source_batches(batches, columns=provided).ingest()
        with pytest.raises(ProjectionError, match=r"'ingest' requires column 'user_id'"):
            plan.run()

    def test_error_names_the_source_stage(self, batches):
        plan = (
            Plan(self.storeless())
            .source_batches(batches, columns={"timestamp"}, name="fixture")
            .ingest()
        )
        with pytest.raises(ProjectionError, match="source stage 'fixture'"):
            plan.run()

    @pytest.mark.parametrize("bogus", ["chunk", "object", "sizes", "ts", "Site"])
    def test_unknown_required_column_rejected(self, bogus, batches):
        probe = ProbeStage(required=frozenset({bogus}))
        plan = Plan(self.storeless()).source_batches(batches).add(
            probe, requires="batches", produces="batches"
        )
        with pytest.raises(ProjectionError, match=f"unknown column {bogus!r}"):
            plan.run()

    def test_unknown_provided_column_rejected(self, batches):
        plan = Plan(self.storeless()).source_batches(
            batches, columns={"timestamp", "nope"}
        )
        probe = ProbeStage(required=frozenset({"timestamp"}))
        plan.add(probe, requires="batches", produces="batches")
        with pytest.raises(ProjectionError, match="unknown column 'nope'"):
            plan.run()

    def test_validation_fires_even_with_projection_off(self, batches):
        plan = (
            Plan(self.storeless(projection=False))
            .source_batches(batches, columns={"timestamp"})
            .ingest()
        )
        with pytest.raises(ProjectionError, match="'ingest' requires column"):
            plan.run()

    def test_undeclared_stage_pins_full_schema(self, batches):
        # A stage without the hook conservatively needs everything, so a
        # partial source cannot feed it.
        plan = Plan(self.storeless()).source_batches(batches, columns=INGEST_COLUMNS)
        plan.add(UndeclaredProbe(), requires="batches", produces="batches")
        with pytest.raises(ProjectionError, match="'undeclared' requires column"):
            plan.run()

    def test_keep_store_ingest_needs_full_rows(self, batches):
        plan = (
            Plan(tiny_config(keep_store=True))
            .source_batches(batches, columns=INGEST_COLUMNS)
            .ingest()
        )
        with pytest.raises(ProjectionError, match="'ingest' requires column"):
            plan.run()

    def test_error_raised_before_any_batch_flows(self, batches):
        pulled = []

        def source():
            for batch in batches:
                pulled.append(batch)
                yield batch

        plan = Plan(self.storeless()).source_batches(source(), columns={"site"}).ingest()
        with pytest.raises(ProjectionError):
            plan.run()
        assert pulled == []

    def test_derive_stage_declarations_validated(self, batches):
        # StudyStage needs the scan-table columns; a source without them
        # fails at build time even though derive runs post-drain.
        plan = (
            Plan(self.storeless())
            .source_batches(batches, columns=AGGREGATE_COLUMNS)
            .ingest()
        )
        plan.add_derive(StudyStage())
        with pytest.raises(ProjectionError, match="'ingest' requires column"):
            plan.run()


class TestPrunedFlow:
    """What actually flows downstream of a pruned source."""

    def test_storeless_plan_prunes_chunk_index(self, batches):
        probe = ProbeStage(required=frozenset())
        config = tiny_config(keep_store=False, run_clustering=False)
        plan = Plan(config).source_batches(batches)
        plan.add(probe, requires="batches", produces="batches")
        plan.ingest().analyze().run()
        assert probe.seen
        for batch in probe.seen:
            assert batch.pruned_columns == ("chunk_index",)

    def test_keep_store_plan_prunes_nothing(self, batches):
        probe = ProbeStage(required=frozenset())
        plan = Plan(tiny_config(keep_store=True)).source_batches(batches)
        plan.add(probe, requires="batches", produces="batches")
        plan.ingest().run()
        assert probe.seen
        for batch in probe.seen:
            assert batch.pruned_columns == ()

    def test_projection_off_prunes_nothing(self, batches):
        probe = ProbeStage(required=frozenset({"timestamp"}))
        plan = Plan(tiny_config(projection=False)).source_batches(batches)
        plan.add(probe, requires="batches", produces="batches")
        plan.run()
        assert probe.seen
        for batch in probe.seen:
            assert batch.pruned_columns == ()

    def test_narrow_probe_drops_string_intern_tables(self, batches):
        probe = ProbeStage(required=frozenset({"timestamp", "site"}))
        plan = Plan(tiny_config()).source_batches(batches)
        plan.add(probe, requires="batches", produces="batches")
        plan.run()
        assert probe.seen
        full = batches[0]
        pruned = probe.seen[0]
        assert len(pruned) == len(full)
        assert set(pruned.pruned_columns) == set(ALL_COLUMNS) - {"timestamp", "site"}
        assert pruned.nbytes < full.nbytes
        with pytest.raises(ProjectionError, match="'object_id' was pruned"):
            pruned.object_id.values
        with pytest.raises(ProjectionError, match="'user_agent' was pruned"):
            pruned.user_agent.tolist()
        # Kept columns are shared, not copied.
        assert pruned.timestamp is full.timestamp
        assert pruned.site is full.site

    def test_union_of_declarations_is_what_survives(self, batches):
        first = ProbeStage(required=frozenset({"timestamp"}), name="first")
        second = ProbeStage(required=frozenset({"site", "bytes_served"}), name="second")
        plan = Plan(tiny_config()).source_batches(batches)
        plan.add(first, requires="batches", produces="batches")
        plan.add(second, requires="batches", produces="batches")
        plan.run()
        kept = {"timestamp", "site", "bytes_served"}
        for batch in first.seen + second.seen:
            assert set(ALL_COLUMNS) - set(batch.pruned_columns) == kept


class TestDeclarations:
    """Every stage and pass of the canonical plan declares its reads."""

    BATTERY_PASSES = [
        ContentCompositionPass(None),
        TrafficCompositionPass(),
        HourlyVolumePass(),
        DeviceCompositionPass(),
        ResponseCodePass(),
        InterarrivalPass(),
        SessionLengthPass(),
        AddictionPass(ContentCategory.VIDEO),
        AddictionPass(ContentCategory.IMAGE),
        RepeatedAccessPass("v1.example", ContentCategory.VIDEO),
    ]

    @pytest.mark.parametrize(
        "analysis_pass", BATTERY_PASSES, ids=lambda p: type(p).__name__
    )
    def test_every_battery_pass_declares_within_schema(self, analysis_pass):
        required = getattr(analysis_pass, "required_columns", None)
        assert required is not None
        assert frozenset(required) <= FULL_SCHEMA

    def test_scan_passes_declare_their_columns(self):
        assert HourlyVolumePass.required_columns == frozenset(
            {"site", "datacenter", "timestamp", "bytes_served"}
        )
        assert ResponseCodePass.required_columns == frozenset(
            {"site", "category", "status_code"}
        )

    def test_index_level_passes_declare_nothing(self):
        for cls in (
            ContentCompositionPass,
            TrafficCompositionPass,
            DeviceCompositionPass,
            InterarrivalPass,
            SessionLengthPass,
            AddictionPass,
            RepeatedAccessPass,
        ):
            assert cls.required_columns == frozenset()

    def test_ingest_stage_declares_by_store_mode(self):
        stage = IngestStage()
        assert stage.required_columns(tiny_config(keep_store=True)) is None
        storeless = stage.required_columns(tiny_config(keep_store=False))
        assert storeless == INGEST_COLUMNS
        assert storeless == AGGREGATE_COLUMNS | SCAN_TABLE_COLUMNS
        assert "chunk_index" not in storeless

    def test_study_stage_declares_battery_union(self):
        stage = StudyStage()
        assert stage.required_columns(tiny_config()) == (
            HourlyVolumePass.required_columns | ResponseCodePass.required_columns
        )

    def test_write_stage_pins_full_schema(self, tmp_path):
        stage = TraceWriteStage(tmp_path / "t.bin")
        assert stage.required_columns(tiny_config()) is None

    def test_pass_sweep_unions_declared_passes(self):
        stage = PassSweepStage([HourlyVolumePass(), ResponseCodePass()])
        assert stage.required_columns(tiny_config()) == (
            HourlyVolumePass.required_columns | ResponseCodePass.required_columns
        )

    def test_pass_sweep_with_no_passes_needs_nothing(self):
        assert PassSweepStage([]).required_columns(tiny_config()) == frozenset()

    def test_pass_sweep_undeclared_pass_pins_full_schema(self):
        class LegacyPass:
            name = "legacy"

            def begin(self, dataset):
                pass

            def process(self, chunk):
                pass

            def finish(self):
                return None

        stage = PassSweepStage([HourlyVolumePass(), LegacyPass()])
        assert stage.required_columns(tiny_config()) is None

    def test_full_schema_matches_batch_columns(self):
        assert FULL_SCHEMA == frozenset(ALL_COLUMNS)
        assert len(ALL_COLUMNS) == 13


class TestTelemetry:
    @pytest.fixture(scope="class")
    def storeless_result(self):
        config = tiny_config(seed=6, keep_store=False, run_clustering=False)
        return Plan(config).generate(PROFILES).simulate().ingest().analyze().run()

    def test_source_stage_reports_column_narrowing(self, storeless_result):
        by_name = {s.name: s for s in storeless_result.stage_stats}
        simulate = by_name["simulate"]
        assert simulate.columns_in == len(FULL_SCHEMA)
        assert simulate.columns_out == len(FULL_SCHEMA) - 1  # chunk_index dropped
        assert by_name["ingest"].columns_in == simulate.columns_out
        assert by_name["ingest"].columns_out == simulate.columns_out

    def test_bytes_pruned_accounts_for_chunk_index(self, storeless_result):
        by_name = {s.name: s for s in storeless_result.stage_stats}
        simulate = by_name["simulate"]
        # chunk_index is int64: exactly 8 bytes per emitted row.
        assert simulate.bytes_pruned == simulate.rows * 8
        assert by_name["ingest"].bytes_pruned == 0

    def test_rendered_table_reports_bytes_pruned(self, storeless_result):
        text = storeless_result.render_stats()
        assert "bytes_pruned" in text
        assert re.search(r"cols 13->12 bytes_pruned [\d,]+", text)

    def test_unprojected_stats_render_without_column_segment(self):
        line = StageStats(name="generate", rows=10, batches=1).render()
        assert "bytes_pruned" not in line and "cols" not in line

    def test_long_stage_names_stay_aligned(self):
        stats = [
            StageStats(name="x", rows=1, batches=1, wall_seconds=1.0),
            StageStats(
                name="a_stage_name_far_beyond_twelve_chars",
                rows=1_000_000,
                batches=9,
                wall_seconds=2.0,
            ),
        ]
        lines = render_stage_stats(stats).splitlines()
        assert lines[0] == "dataflow plan:"
        offsets = {line.index(" rows ") for line in lines[1:]}
        assert len(offsets) == 1  # the row-count column starts at one offset
        batch_offsets = {line.index(" batches ") for line in lines[1:]}
        assert len(batch_offsets) == 1

    def test_short_names_keep_the_legacy_width(self):
        # A table of short names must render exactly as before the fix
        # (12-char name column), so existing telemetry greps keep working.
        line = StageStats(name="simulate", rows=5, batches=1, wall_seconds=1.0).render()
        assert line.startswith("stage simulate     ")


class TestIngestBoundary:
    """DatasetBuilder / from_batches / from_file column pruning."""

    def test_pruned_from_batches_matches_unpruned(self, batches):
        pruned = TraceDataset.from_batches(
            batches, keep_store=False, columns=INGEST_COLUMNS
        )
        full = TraceDataset.from_batches(batches, keep_store=False)
        assert len(pruned) == len(full)
        assert pruned.sites == full.sites
        assert pruned.site_extents() == full.site_extents()
        pruned_report = Study(run_clustering=False).run(pruned)
        full_report = Study(run_clustering=False).run(full)
        assert pruned_report.to_summary_dict() == full_report.to_summary_dict()

    def test_pruned_ingest_resident_bytes_shrink(self, batches):
        pruned = TraceDataset.from_batches(
            batches, keep_store=False, columns=INGEST_COLUMNS
        )
        full = TraceDataset.from_batches(batches, keep_store=False)
        assert pruned.ingest_stats is not None and full.ingest_stats is not None
        assert (
            pruned.ingest_stats.peak_resident_bytes
            < full.ingest_stats.peak_resident_bytes
        )

    def test_from_file_with_columns_matches(self, tmp_path, batches):
        path = tmp_path / "trace.bin"
        write_trace_batches(batches, path)
        pruned = TraceDataset.from_file(
            path, batch_size=512, keep_store=False, columns=INGEST_COLUMNS
        )
        full = TraceDataset.from_file(path, batch_size=512, keep_store=False)
        assert Study(run_clustering=False).run(pruned).to_summary_dict() == Study(
            run_clustering=False
        ).run(full).to_summary_dict()

    def test_columns_with_keep_store_rejected(self, batches):
        with pytest.raises(ProjectionError, match="keep_store=False"):
            TraceDataset.from_batches(batches, keep_store=True, columns=INGEST_COLUMNS)

    @pytest.mark.parametrize("dropped", sorted(INGEST_COLUMNS))
    def test_missing_required_column_rejected_up_front(self, dropped, batches):
        columns = INGEST_COLUMNS - {dropped}
        with pytest.raises(ProjectionError, match=f"requires column {dropped!r}"):
            TraceDataset.from_batches(batches, keep_store=False, columns=columns)
