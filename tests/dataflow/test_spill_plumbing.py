"""Executor spill plumbing: pool lifecycle, use_spill dispatch, telemetry.

The executor owns the run's one :class:`~repro.spill.SpillPool`: it is
created only when the config carries a ``memory_budget``, handed to every
stage implementing ``use_spill`` *before* ``connect``, and closed —
deleting every leftover segment — after the drain, even when a stage
raises mid-stream.  The StageStats spill clause is pinned here too since
CI greps the rendered table for ``bytes_spilled``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dataflow import Plan, RunConfig, StageStats
from repro.dataflow.stage import render_stage_stats
from repro.trace.batch import RecordBatch

from tests.trace.test_batch import varied_records


def _config(**overrides) -> RunConfig:
    return RunConfig.resolve(env={}, **overrides)


def _batches(n: int = 2):
    records = varied_records(24)
    half = len(records) // 2
    return [
        RecordBatch.from_records(records[:half]).drop_records(),
        RecordBatch.from_records(records[half:]).drop_records(),
    ][:n]


class _SpillAwareSink:
    """A pass-through sink recording the pool the executor hands it."""

    name = "spy"

    def __init__(self, explode_after: int | None = None):
        self.pool = None
        self.connect_order = []
        self._explode_after = explode_after

    def use_spill(self, pool) -> None:
        self.pool = pool
        self.connect_order.append("use_spill")

    def connect(self, upstream, config):
        self.connect_order.append("connect")

        def stream():
            for index, block in enumerate(upstream):
                if self._explode_after is not None and index >= self._explode_after:
                    raise RuntimeError("sink exploded")
                yield block

        return stream()


class TestPoolLifecycle:
    def test_no_budget_means_no_pool(self):
        sink = _SpillAwareSink()
        plan = Plan(_config()).source_batches(_batches())
        plan.add(sink, requires="batches", produces="batches")
        plan.run()
        assert sink.pool is None

    def test_use_spill_called_before_connect(self):
        sink = _SpillAwareSink()
        plan = Plan(_config(memory_budget=1 << 30)).source_batches(_batches())
        plan.add(sink, requires="batches", produces="batches")
        plan.run()
        assert sink.pool is not None
        assert sink.connect_order == ["use_spill", "connect"]
        assert sink.pool.budget.limit_bytes == 1 << 30

    def test_pool_closed_after_successful_run(self):
        sink = _SpillAwareSink()
        plan = Plan(_config(memory_budget=1 << 30)).source_batches(_batches())
        plan.add(sink, requires="batches", produces="batches")
        plan.run()
        assert sink.pool._closed

    def test_pool_closed_and_segments_removed_on_stage_error(self, tmp_path):
        spill_dir = tmp_path / "spill"
        sink = _SpillAwareSink(explode_after=1)
        plan = Plan(
            _config(memory_budget=1 << 30, spill_dir=str(spill_dir))
        ).source_batches(_batches())
        plan.add(sink, requires="batches", produces="batches")

        class _Leaker:
            """A stage that writes a segment and never restores it."""

            name = "leaker"

            def use_spill(self, pool) -> None:
                self.handle = pool.register("leaker")

            def connect(self, upstream, config):
                def stream():
                    for block in upstream:
                        self.handle.write_run([{"x": np.arange(4, dtype=np.int64)}])
                        yield block

                return stream()

        leaker = _Leaker()
        plan.add(leaker, requires="batches", produces="batches")
        with pytest.raises(RuntimeError, match="sink exploded"):
            plan.run()
        assert sink.pool._closed
        assert sink.pool.live_segments == ()
        assert not spill_dir.exists() or list(spill_dir.iterdir()) == []

    def test_spill_dir_config_reaches_the_pool(self, tmp_path):
        sink = _SpillAwareSink()
        target = tmp_path / "segments"
        plan = Plan(
            _config(memory_budget=1 << 30, spill_dir=str(target))
        ).source_batches(_batches())
        plan.add(sink, requires="batches", produces="batches")
        plan.run()
        assert sink.pool._spill_dir == str(target)


class TestStageStatsRender:
    def test_spill_clause_rendered_when_active(self):
        stats = StageStats(
            name="ingest",
            rows=10,
            spill_files=3,
            bytes_spilled=2048,
            bytes_restored=2048,
            spill_seconds=0.25,
        )
        line = stats.render()
        assert "spill_files 3" in line
        assert "bytes_spilled 2,048" in line
        assert "bytes_restored 2,048" in line
        assert "spill 0.250s" in line

    def test_spill_clause_absent_when_idle(self):
        assert "bytes_spilled" not in StageStats(name="ingest", rows=10).render()

    def test_table_keeps_alignment_with_spill_columns(self):
        table = render_stage_stats(
            [
                StageStats(name="simulate", rows=5, bytes_spilled=10, spill_files=1),
                StageStats(name="ingest", rows=5),
            ]
        )
        lines = table.splitlines()
        assert lines[0] == "dataflow plan:"
        assert "bytes_spilled 10" in lines[1]
        assert "bytes_spilled" not in lines[2]


class TestConfigValidation:
    def test_memory_budget_must_be_positive(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="memory_budget"):
            RunConfig(memory_budget=0)
        with pytest.raises(ConfigError, match="memory_budget"):
            RunConfig(memory_budget=-5)
        with pytest.raises(ConfigError, match="memory_budget"):
            RunConfig(memory_budget=True)

    def test_spill_dir_must_be_nonempty(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="spill_dir"):
            RunConfig(spill_dir="")

    def test_defaults_are_off(self):
        config = RunConfig()
        assert config.memory_budget is None
        assert config.spill_dir is None
