"""Plan composition, execution equivalence, and per-stage telemetry.

The equivalence tests pin the refactor's core promise: a streaming plan
produces byte-identical traces and value-identical study reports to the
manual subsystem-by-subsystem composition the pipeline used before the
dataflow layer, for any worker count, queue depth, or keep_store setting.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdn.simulator import CdnSimulator, sized_simulation_config
from repro.core.dataset import TraceDataset
from repro.core.report import Study
from repro.dataflow import Plan, RunConfig, StageStats
from repro.errors import ConfigError, PlanError
from repro.trace.writer import write_trace_batches
from repro.workload.generator import WorkloadGenerator
from repro.workload.profiles import profile_p1, profile_v1
from repro.workload.scale import ScaleConfig

PROFILES = (profile_v1(), profile_p1())


def tiny_config(**overrides) -> RunConfig:
    return RunConfig.resolve(env={}, scale=ScaleConfig.tiny(), **overrides)


def legacy_batches(seed: int, batch_size: int | None = None):
    """The pre-dataflow composition: each subsystem driven by hand."""
    generator = WorkloadGenerator(profiles=PROFILES, scale=ScaleConfig.tiny(), seed=seed)
    workloads = generator.generate_all()
    catalogs = {name: workload.catalog for name, workload in workloads.items()}
    sim_config = sized_simulation_config(catalogs.values(), seed)
    simulator = CdnSimulator(profiles=generator.profiles, config=sim_config)
    simulator.warm(catalogs.values())
    kwargs = {} if batch_size is None else {"batch_size": batch_size}
    batches = list(
        simulator.run_batches(generator.merged_request_batches(workloads), **kwargs)
    )
    return catalogs, batches


def legacy_report(seed: int):
    catalogs, batches = legacy_batches(seed)
    dataset = TraceDataset.from_batches(batches)
    return Study(run_clustering=False).run(dataset, catalogs=catalogs)


class TestComposition:
    def test_two_sources_rejected(self):
        with pytest.raises(PlanError, match="already has one"):
            Plan(tiny_config()).generate().generate()

    def test_transform_before_source_rejected(self):
        with pytest.raises(PlanError, match="no source yet"):
            Plan(tiny_config()).simulate()

    def test_stream_kind_mismatch_rejected(self):
        # ingest consumes columnar batches, generate emits request blocks.
        with pytest.raises(PlanError, match="'requests' stream"):
            Plan(tiny_config()).generate().ingest()

    def test_write_trace_needs_batches(self, tmp_path):
        with pytest.raises(PlanError):
            Plan(tiny_config()).generate().write_trace(tmp_path / "t.bin")

    def test_analyze_without_ingest_rejected(self):
        with pytest.raises(PlanError, match="ingest"):
            Plan(tiny_config()).generate().simulate().analyze()

    def test_passes_without_ingest_rejected(self):
        with pytest.raises(PlanError, match="ingest"):
            Plan(tiny_config()).generate().simulate().passes([])

    def test_empty_plan_rejected(self):
        with pytest.raises(PlanError, match="empty plan"):
            Plan(tiny_config()).run()

    def test_plan_error_is_a_config_error(self):
        assert issubclass(PlanError, ConfigError)

    def test_default_config_resolves_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SEED", "23")
        assert Plan().config.seed == 23


class TestEquivalence:
    def test_trace_bytes_identical_to_manual_composition(self, tmp_path):
        seed = 11
        plan_path = tmp_path / "plan.bin"
        manual_path = tmp_path / "manual.bin"
        result = (
            Plan(tiny_config(seed=seed, keep_store=False, sim_workers=2, sim_queue_depth=256))
            .generate(PROFILES)
            .simulate()
            .write_trace(plan_path)
            .run()
        )
        _, batches = legacy_batches(seed)
        write_trace_batches(batches, manual_path)
        assert plan_path.read_bytes() == manual_path.read_bytes()
        assert result.rows_written == sum(len(batch) for batch in batches)

    def test_batch_boundaries_do_not_change_the_trace(self, tmp_path):
        default_path = tmp_path / "default.bin"
        small_path = tmp_path / "small.bin"
        for path, batch_size in ((default_path, None), (small_path, 512)):
            plan = Plan(
                tiny_config(seed=3, keep_store=False, batch_size=batch_size)
            )
            plan.generate(PROFILES).simulate().write_trace(path).run()
        assert default_path.read_bytes() == small_path.read_bytes()

    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2),
        sim_workers=st.integers(min_value=1, max_value=3),
        sim_queue_depth=st.sampled_from([64, 512, 8192]),
        keep_store=st.booleans(),
    )
    def test_report_matches_manual_study_across_grid(
        self, seed, sim_workers, sim_queue_depth, keep_store
    ):
        config = tiny_config(
            seed=seed,
            keep_store=keep_store,
            sim_workers=sim_workers,
            sim_queue_depth=sim_queue_depth,
            run_clustering=False,
        )
        result = Plan(config).generate(PROFILES).simulate().ingest().analyze().run()
        assert result.report is not None
        expected = _manual_reports.setdefault(seed, legacy_report(seed))
        assert result.report.to_summary_dict() == expected.to_summary_dict()

    def test_read_trace_plan_matches_direct_ingest(self, tmp_path):
        path = tmp_path / "trace.bin"
        _, batches = legacy_batches(seed=5)
        write_trace_batches(batches, path)
        result = Plan(tiny_config()).read_trace(path).ingest().run()
        expected = TraceDataset.from_batches(batches)
        assert result.dataset is not None
        assert len(result.dataset) == len(expected)
        assert result.dataset.sites == expected.sites
        assert result.trace_path == path

    def test_source_batches_plan_matches_from_batches(self):
        _, batches = legacy_batches(seed=5)
        result = Plan(tiny_config()).source_batches(batches).ingest().run()
        expected = TraceDataset.from_batches(batches)
        assert result.dataset is not None
        assert len(result.dataset) == len(expected)
        assert result.dataset.sites == expected.sites
        assert result.dataset.site_extents() == expected.site_extents()


#: Manual (pre-dataflow) reports memoised per seed so the hypothesis grid
#: recomputes only the plan side per example.
_manual_reports: dict[int, object] = {}


class TestTelemetry:
    @pytest.fixture(scope="class")
    def run_result(self):
        config = tiny_config(seed=7, run_clustering=False)
        return Plan(config).generate(PROFILES).simulate().ingest().analyze().run()

    def test_one_stats_entry_per_stage_in_plan_order(self, run_result):
        assert [s.name for s in run_result.stage_stats] == [
            "generate",
            "simulate",
            "ingest",
            "analyze",
        ]

    def test_streaming_stages_counted(self, run_result):
        for stats in run_result.stage_stats[:3]:
            assert stats.rows > 0
            assert stats.batches >= 1
            assert stats.wall_seconds >= 0.0
            assert stats.peak_resident_rows > 0

    def test_rows_conserved_between_simulate_and_ingest(self, run_result):
        by_name = {s.name: s for s in run_result.stage_stats}
        assert by_name["simulate"].rows == by_name["ingest"].rows
        assert by_name["ingest"].rows == len(run_result.dataset)
        assert run_result.total_rows == max(s.rows for s in run_result.stage_stats)

    def test_render_stats_table(self, run_result):
        text = run_result.render_stats()
        lines = text.splitlines()
        assert lines[0] == "dataflow plan:"
        assert len(lines) == 1 + len(run_result.stage_stats)
        for stage in ("generate", "simulate", "ingest", "analyze"):
            assert f"  stage {stage}" in text
        assert "rows/s" in text and "peak resident" in text

    def test_rows_per_sec_handles_zero_wall(self):
        assert StageStats(name="x").rows_per_sec == 0.0
        assert StageStats(name="x", rows=100, wall_seconds=2.0).rows_per_sec == 50.0

    def test_storeless_peak_resident_stays_bounded(self):
        config = tiny_config(seed=7, keep_store=False, batch_size=512)
        result = Plan(config).generate(PROFILES).simulate().ingest().run()
        by_name = {s.name: s for s in result.stage_stats}
        total = by_name["ingest"].rows
        assert total > 2048  # enough rows that boundedness is meaningful
        assert by_name["ingest"].peak_resident_rows <= 512
        assert by_name["ingest"].batches >= total // 512
