"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(["generate", "--out", "x.csv", "--seed", "3", "--scale", "tiny"])
        assert args.command == "generate"
        assert args.seed == 3
        assert args.scale == "tiny"

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--out", "x.csv", "--scale", "huge"])

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--policy", "belady"])


class TestCommands:
    def test_generate_then_analyze(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        trace = tmp_path / "trace.csv"
        assert main(["generate", "--out", str(trace), "--seed", "1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert trace.exists()

        assert main(["analyze", "--trace", str(trace), "--no-clustering"]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out
        assert "Fig 16" in out

    def test_simulate_prints_hit_ratios(self, capsys):
        assert main(["simulate", "--seed", "1", "--scale", "tiny", "--policy", "lru"]) == 0
        out = capsys.readouterr().out
        assert "hit_ratio" in out
        assert "overall hit ratio" in out

    def test_reproduce_prints_full_report(self, capsys):
        assert main(["reproduce", "--seed", "1", "--scale", "tiny", "--no-clustering"]) == 0
        out = capsys.readouterr().out
        for figure in ("Fig 1", "Fig 7", "Fig 15", "Fig 16"):
            assert figure in out

    def test_compare_prints_baseline_table(self, capsys):
        assert main(["compare", "--seed", "1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "N-1" in out
        assert "V-1" in out

    def test_trace_tooling_commands(self, tmp_path, capsys):
        trace = tmp_path / "trace.csv"
        assert main(["generate", "--out", str(trace), "--seed", "1", "--scale", "tiny"]) == 0
        capsys.readouterr()

        assert main(["summarize", "--trace", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        assert "per-site records:" in out

        out_dir = tmp_path / "shards"
        assert main(["split", "--trace", str(trace), "--out-dir", str(out_dir), "--by", "site"]) == 0
        capsys.readouterr()
        shards = sorted(out_dir.glob("*.csv"))
        assert shards

        merged = tmp_path / "merged.csv"
        assert main(["merge", "--out", str(merged)] + [str(s) for s in shards]) == 0
        out = capsys.readouterr().out
        assert "merged" in out
        assert merged.exists()

    def test_export_dir_option(self, tmp_path, capsys):
        target = tmp_path / "figures"
        assert main([
            "reproduce", "--seed", "1", "--scale", "tiny", "--no-clustering",
            "--export-dir", str(target),
        ]) == 0
        out = capsys.readouterr().out
        assert "figure CSVs" in out
        assert any(target.glob("fig*.csv"))


class TestDataflowCli:
    def test_analyze_in_process_streaming_with_telemetry(self, capsys):
        assert main([
            "analyze", "--seed", "1", "--scale", "tiny", "--no-clustering",
            "--no-keep-store", "--sim-workers", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out
        assert "dataflow plan:" in out
        for stage in ("generate", "simulate", "ingest", "analyze"):
            assert f"stage {stage}" in out

    def test_analyze_trace_prints_telemetry(self, tmp_path, capsys):
        trace = tmp_path / "trace.csv"
        assert main(["generate", "--out", str(trace), "--seed", "1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "dataflow plan:" in out  # generate streams through the plan too
        assert "stage write_trace" in out

        assert main(["analyze", "--trace", str(trace), "--no-clustering"]) == 0
        out = capsys.readouterr().out
        assert "stage read_trace" in out
        assert "stage ingest" in out

    def test_analyze_storeless_reports_projection(self, capsys):
        # The storeless plan needs everything but chunk_index, so the
        # telemetry must show the source narrowing 13 -> 12 columns.
        assert main([
            "analyze", "--seed", "1", "--scale", "tiny", "--no-clustering",
            "--no-keep-store",
        ]) == 0
        out = capsys.readouterr().out
        assert "cols 13->12" in out
        assert "bytes_pruned" in out

    def test_analyze_no_projection_flag_disables_pruning(self, capsys):
        assert main([
            "analyze", "--seed", "1", "--scale", "tiny", "--no-clustering",
            "--no-keep-store", "--no-projection",
        ]) == 0
        out = capsys.readouterr().out
        # Column accounting still renders, but nothing was stripped.
        assert "cols 13->13" in out
        assert "bytes_pruned 0" in out

    def test_analyze_record_engine_requires_trace(self, capsys):
        assert main(["analyze", "--engine", "record"]) == 2
        assert "needs --trace" in capsys.readouterr().out

    def test_ingest_bench_requires_a_source(self, capsys):
        assert main(["ingest-bench"]) == 2
        assert "--trace" in capsys.readouterr().out

    def test_scale_flag_beats_environment(self, monkeypatch, capsys):
        # REPRO_SCALE would pick small; the explicit flag must win.
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert main(["simulate", "--seed", "1", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "overall hit ratio" in out


class TestSpillCli:
    def test_memory_budget_and_spill_dir_parsed(self):
        args = build_parser().parse_args(
            ["analyze", "--memory-budget", "1048576", "--spill-dir", "/tmp/Spill-X"]
        )
        assert args.memory_budget == 1048576
        assert args.spill_dir == "/tmp/Spill-X"

    def test_flags_default_to_unset(self):
        args = build_parser().parse_args(["analyze"])
        assert args.memory_budget is None
        assert args.spill_dir is None

    def test_analyze_with_budget_prints_spill_telemetry(self, tmp_path, capsys):
        spill_dir = tmp_path / "segments"
        assert main([
            "analyze", "--seed", "1", "--scale", "tiny", "--no-clustering",
            "--no-keep-store", "--sim-workers", "2",
            "--memory-budget", "1", "--spill-dir", str(spill_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "Fig 1" in out
        assert "bytes_spilled" in out
        assert "spill_files" in out
        # Every segment was consumed or removed when the plan closed its pool.
        assert not spill_dir.exists() or list(spill_dir.iterdir()) == []

    def test_budgeted_report_matches_unbudgeted(self, capsys):
        base_args = [
            "analyze", "--seed", "1", "--scale", "tiny", "--no-clustering",
            "--no-keep-store",
        ]
        assert main(base_args) == 0
        base = capsys.readouterr().out
        assert main(base_args + ["--memory-budget", "1"]) == 0
        budgeted = capsys.readouterr().out
        # The figure battery (everything before the telemetry table) is
        # bit-identical; only the telemetry lines may differ.
        assert base.split("dataflow plan:")[0] == budgeted.split("dataflow plan:")[0]

    def test_memory_budget_env_fallback(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "1")
        assert main([
            "analyze", "--seed", "1", "--scale", "tiny", "--no-clustering",
            "--no-keep-store",
        ]) == 0
        assert "bytes_spilled" in capsys.readouterr().out
