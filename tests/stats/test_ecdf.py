"""Unit and property tests for the empirical CDF."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EmptyDatasetError
from repro.stats.ecdf import EmpiricalCDF

finite_floats = st.floats(min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False)
samples = st.lists(finite_floats, min_size=1, max_size=200)


class TestConstruction:
    def test_empty_sample_rejected(self):
        with pytest.raises(EmptyDatasetError):
            EmpiricalCDF([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0, float("nan")])

    def test_inf_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF([1.0, float("inf")])

    def test_accepts_numpy_array(self):
        cdf = EmpiricalCDF(np.array([3.0, 1.0, 2.0]))
        assert len(cdf) == 3
        assert cdf.min == 1.0

    def test_sample_is_readonly(self):
        cdf = EmpiricalCDF([1.0, 2.0])
        with pytest.raises(ValueError):
            cdf.sample[0] = 99.0


class TestEvaluate:
    def test_known_values(self):
        cdf = EmpiricalCDF([1.0, 2.0, 2.0, 10.0])
        assert cdf.evaluate(0.5) == 0.0
        assert cdf.evaluate(1.0) == 0.25
        assert cdf.evaluate(2.0) == 0.75
        assert cdf.evaluate(10.0) == 1.0
        assert cdf.evaluate(11.0) == 1.0

    def test_evaluate_many_matches_scalar(self):
        cdf = EmpiricalCDF([5, 1, 3, 3, 8])
        xs = [-1, 1, 3, 4, 8, 100]
        np.testing.assert_allclose(cdf.evaluate_many(xs), [cdf.evaluate(x) for x in xs])

    def test_fraction_above_complements_evaluate(self):
        cdf = EmpiricalCDF([1, 2, 3, 4])
        assert cdf.fraction_above(2) == pytest.approx(1.0 - cdf.evaluate(2))


class TestQuantile:
    def test_median_of_odd_sample(self):
        assert EmpiricalCDF([3, 1, 2]).median == 2

    def test_extremes(self):
        cdf = EmpiricalCDF([4, 7, 9])
        assert cdf.quantile(0.0) == 4
        assert cdf.quantile(1.0) == 9

    def test_out_of_range_rejected(self):
        cdf = EmpiricalCDF([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)
        with pytest.raises(ValueError):
            cdf.quantile(-0.1)

    @given(samples, st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_inverts_evaluate(self, sample, q):
        cdf = EmpiricalCDF(sample)
        x = cdf.quantile(q)
        # By definition of the generalised inverse: F(x) >= q.
        assert cdf.evaluate(x) >= q - 1e-12


class TestProperties:
    @given(samples)
    def test_monotone_nondecreasing(self, sample):
        cdf = EmpiricalCDF(sample)
        xs = sorted(sample)
        values = [cdf.evaluate(x) for x in xs]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    @given(samples)
    def test_bounds(self, sample):
        cdf = EmpiricalCDF(sample)
        assert cdf.evaluate(cdf.min - 1) == 0.0
        assert cdf.evaluate(cdf.max) == 1.0

    @given(samples)
    def test_series_is_valid_cdf_curve(self, sample):
        xs, ys = EmpiricalCDF(sample).series()
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(ys) >= 0)
        assert ys[-1] == pytest.approx(1.0)

    def test_series_subsampling_keeps_endpoints(self):
        cdf = EmpiricalCDF(np.arange(1000))
        xs, ys = cdf.series(max_points=10)
        assert xs.size <= 10
        assert xs[0] == cdf.min
        assert xs[-1] == cdf.max


class TestBimodality:
    def test_bimodal_mixture_detected(self):
        rng = np.random.default_rng(0)
        small = rng.lognormal(np.log(20_000), 0.4, size=500)
        large = rng.lognormal(np.log(400_000), 0.4, size=500)
        cdf = EmpiricalCDF(np.concatenate([small, large]))
        assert cdf.is_bimodal(split=80_000)

    def test_unimodal_not_detected(self):
        rng = np.random.default_rng(0)
        cdf = EmpiricalCDF(rng.lognormal(np.log(100_000), 0.2, size=1000))
        assert not cdf.is_bimodal(split=100_000)
