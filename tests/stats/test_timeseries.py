"""Tests for hourly time series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.stats.timeseries import HourlyTimeSeries, diurnality_index


class TestConstruction:
    def test_default_is_one_week(self):
        assert HourlyTimeSeries().hours == 168

    def test_zero_hours_rejected(self):
        with pytest.raises(ConfigError):
            HourlyTimeSeries(hours=0)

    def test_values_length_checked(self):
        with pytest.raises(ConfigError):
            HourlyTimeSeries(hours=5, values=[1, 2, 3])

    def test_from_values(self):
        series = HourlyTimeSeries.from_values([1.0, 2.0, 3.0])
        assert series.hours == 3
        assert series.total == 6.0


class TestFromTimestamps:
    def test_bins_by_hour(self):
        series = HourlyTimeSeries.from_timestamps([0.0, 10.0, 3600.0, 7200.0], hours=3)
        np.testing.assert_array_equal(series.values, [2, 1, 1])

    def test_weights(self):
        series = HourlyTimeSeries.from_timestamps([0.0, 3600.0], hours=2, weights=[5.0, 7.0])
        np.testing.assert_array_equal(series.values, [5, 7])

    def test_weights_length_checked(self):
        with pytest.raises(ConfigError):
            HourlyTimeSeries.from_timestamps([0.0], hours=1, weights=[1.0, 2.0])

    def test_out_of_range_clipped_to_edges(self):
        series = HourlyTimeSeries.from_timestamps([-5.0, 10 * 3600.0], hours=2)
        assert series.total == 2
        assert series.values[0] == 1
        assert series.values[1] == 1

    def test_empty_timestamps(self):
        assert HourlyTimeSeries.from_timestamps([], hours=4).total == 0


class TestTransforms:
    def test_normalized_sums_to_one(self):
        series = HourlyTimeSeries.from_values([2.0, 6.0])
        assert series.normalized().total == pytest.approx(1.0)

    def test_normalized_all_zero_unchanged(self):
        series = HourlyTimeSeries(hours=3)
        np.testing.assert_array_equal(series.normalized().values, [0, 0, 0])

    def test_shifted_is_circular(self):
        series = HourlyTimeSeries.from_values([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(series.shifted(1).values, [3, 1, 2])
        np.testing.assert_array_equal(series.shifted(-1).values, [2, 3, 1])

    def test_shift_preserves_total(self):
        series = HourlyTimeSeries.from_values(np.arange(24.0))
        assert series.shifted(7).total == series.total

    def test_fold_daily_averages_days(self):
        values = np.concatenate([np.ones(24), 3 * np.ones(24)])
        series = HourlyTimeSeries.from_values(values)
        np.testing.assert_allclose(series.fold_daily(), 2.0 * np.ones(24))

    def test_daily_totals(self):
        series = HourlyTimeSeries.from_values(np.ones(48))
        np.testing.assert_array_equal(series.daily_totals(), [24, 24])

    def test_peak_hour_of_day(self):
        values = np.zeros(48)
        values[5] = 10
        values[29] = 10
        series = HourlyTimeSeries.from_values(values)
        assert series.peak_hour_of_day() == 5

    def test_add_series(self):
        a = HourlyTimeSeries.from_values([1.0, 2.0])
        b = HourlyTimeSeries.from_values([3.0, 4.0])
        np.testing.assert_array_equal((a + b).values, [4, 6])

    def test_add_mismatched_rejected(self):
        with pytest.raises(ConfigError):
            HourlyTimeSeries(hours=2) + HourlyTimeSeries(hours=3)


class TestDiurnality:
    def test_flat_profile_is_one(self):
        assert diurnality_index(np.ones(24)) == pytest.approx(1.0)

    def test_peaked_profile_above_one(self):
        profile = np.ones(24)
        profile[2] = 25
        assert diurnality_index(profile) > 1.5

    def test_wrong_length_rejected(self):
        with pytest.raises(ConfigError):
            diurnality_index(np.ones(23))

    def test_zero_profile(self):
        assert diurnality_index(np.zeros(24)) == 1.0
