"""Tests for Pearson and Spearman correlation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.correlation import pearson, spearman

pair_lists = st.lists(
    st.tuples(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    ),
    min_size=2,
    max_size=100,
)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_input_gives_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            pearson([1], [1])

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200)
        y = 0.5 * x + rng.normal(size=200)
        assert pearson(x, y) == pytest.approx(float(np.corrcoef(x, y)[0, 1]))

    @given(pair_lists)
    def test_bounded_and_symmetric(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        r = pearson(x, y)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
        assert pearson(y, x) == pytest.approx(r)


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        x = [1, 2, 3, 4, 5]
        y = [1, 8, 27, 64, 125]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_ties_handled(self):
        # With ties, ranks are averaged; result stays in bounds.
        r = spearman([1, 1, 2, 3], [4, 4, 5, 6])
        assert r == pytest.approx(1.0)

    def test_anticorrelated(self):
        assert spearman([1, 2, 3], [9, 4, 1]) == pytest.approx(-1.0)

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=100)
        y = x + 0.3 * rng.normal(size=100)
        assert spearman(x, y) == pytest.approx(spearman(np.exp(x), y), abs=1e-9)

    @given(pair_lists)
    def test_bounded(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        r = spearman(x, y)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9
