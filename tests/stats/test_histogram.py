"""Tests for linear and logarithmic histograms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.stats.histogram import LinearHistogram, LogHistogram


class TestLinearHistogram:
    def test_bad_range_rejected(self):
        with pytest.raises(ConfigError):
            LinearHistogram(low=5, high=5, bins=3)

    def test_bad_bins_rejected(self):
        with pytest.raises(ConfigError):
            LinearHistogram(low=0, high=1, bins=0)

    def test_binning(self):
        hist = LinearHistogram(low=0, high=10, bins=10)
        for value in (0, 0.5, 3.3, 9.99):
            hist.add(value)
        assert hist.counts[0] == 2
        assert hist.counts[3] == 1
        assert hist.counts[9] == 1

    def test_under_and_overflow(self):
        hist = LinearHistogram(low=0, high=10, bins=5)
        hist.add(-1)
        hist.add(10)
        hist.add(100)
        assert hist.underflow == 1
        assert hist.overflow == 2
        assert hist.total == 3

    def test_weighted_counts(self):
        hist = LinearHistogram(low=0, high=10, bins=2)
        hist.add(1, count=5)
        assert hist.counts[0] == 5

    def test_normalized_sums_to_bin_mass(self):
        hist = LinearHistogram(low=0, high=4, bins=4)
        hist.extend([0, 1, 2, 3])
        np.testing.assert_allclose(hist.normalized().sum(), 1.0)

    def test_normalized_empty_is_zero(self):
        hist = LinearHistogram(low=0, high=4, bins=4)
        assert hist.normalized().sum() == 0.0

    @given(st.lists(st.floats(min_value=-100, max_value=200, allow_nan=False), max_size=100))
    def test_no_observation_lost(self, values):
        hist = LinearHistogram(low=0, high=100, bins=7)
        hist.extend(values)
        assert hist.total == len(values)


class TestLogHistogram:
    def test_requires_positive_range(self):
        with pytest.raises(ConfigError):
            LogHistogram(low=0, high=10)

    def test_bin_edges_are_geometric(self):
        hist = LogHistogram(low=1, high=1000, bins_per_decade=1)
        np.testing.assert_allclose(hist.bin_edges(), [1, 10, 100, 1000])

    def test_binning_across_decades(self):
        hist = LogHistogram(low=1, high=10_000, bins_per_decade=1)
        hist.extend([2, 20, 200, 2000])
        np.testing.assert_array_equal(hist.counts, [1, 1, 1, 1])

    def test_quantile_monotone(self):
        hist = LogHistogram(low=1, high=1e6, bins_per_decade=5)
        rng = np.random.default_rng(1)
        hist.extend(rng.lognormal(np.log(1000), 1.0, size=2000))
        qs = [hist.quantile(q) for q in (0.1, 0.5, 0.9)]
        assert qs[0] <= qs[1] <= qs[2]

    def test_quantile_accuracy(self):
        hist = LogHistogram(low=1, high=1e6, bins_per_decade=20)
        rng = np.random.default_rng(2)
        sample = rng.lognormal(np.log(5000), 0.8, size=5000)
        hist.extend(sample)
        estimate = hist.quantile(0.5)
        true = float(np.median(sample))
        assert abs(np.log10(estimate) - np.log10(true)) < 0.1

    def test_quantile_of_empty_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(low=1, high=10).quantile(0.5)

    @given(st.lists(st.floats(min_value=0.001, max_value=1e9, allow_nan=False), max_size=100))
    def test_no_observation_lost(self, values):
        hist = LogHistogram(low=1, high=1e6)
        hist.extend(values)
        assert hist.total == len(values)
