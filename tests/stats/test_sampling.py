"""Tests for RNG helpers, weighted choice and reservoir sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.sampling import ReservoirSampler, make_rng, spawn_rng, weighted_choice


class TestMakeRng:
    def test_seed_reproducibility(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert make_rng(rng) is rng

    def test_none_gives_fresh_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRng:
    def test_deterministic_given_parent_state(self):
        a = spawn_rng(make_rng(1), "catalog").random()
        b = spawn_rng(make_rng(1), "catalog").random()
        assert a == b

    def test_different_labels_diverge(self):
        parent = make_rng(1)
        child_a = spawn_rng(parent, "a")
        parent2 = make_rng(1)
        child_b = spawn_rng(parent2, "b")
        assert child_a.random() != child_b.random()


class TestWeightedChoice:
    def test_degenerate_weight_always_picked(self):
        rng = make_rng(0)
        for _ in range(20):
            assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), [], [])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(0), ["a"], [0.0])

    def test_roughly_proportional(self):
        rng = make_rng(3)
        picks = [weighted_choice(rng, ["x", "y"], [3.0, 1.0]) for _ in range(4000)]
        share = picks.count("x") / len(picks)
        assert 0.70 < share < 0.80


class TestReservoirSampler:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ReservoirSampler(0)

    def test_keeps_everything_under_capacity(self):
        sampler = ReservoirSampler(10, rng=0)
        sampler.extend(range(5))
        assert sorted(sampler.items) == [0, 1, 2, 3, 4]
        assert sampler.seen == 5

    def test_never_exceeds_capacity(self):
        sampler = ReservoirSampler(8, rng=0)
        sampler.extend(range(1000))
        assert len(sampler) == 8
        assert sampler.seen == 1000

    def test_sample_is_subset_of_stream(self):
        sampler = ReservoirSampler(16, rng=1)
        sampler.extend(range(500))
        assert all(0 <= item < 500 for item in sampler.items)

    def test_uniformity(self):
        # Each of 100 stream elements should appear with probability k/n.
        hits = np.zeros(100)
        for seed in range(300):
            sampler = ReservoirSampler(10, rng=seed)
            sampler.extend(range(100))
            for item in sampler.items:
                hits[item] += 1
        expected = 300 * 10 / 100
        # Allow generous tolerance: binomial std is ~5.2.
        assert np.all(np.abs(hits - expected) < 6 * np.sqrt(expected))
