"""Tests for the P² streaming quantile estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.streaming import P2Quantile


class TestP2Quantile:
    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).value

    def test_exact_under_five_samples(self):
        estimator = P2Quantile(0.5)
        estimator.extend([3.0, 1.0, 2.0])
        assert estimator.value == 2.0

    def test_median_of_uniform(self):
        rng = np.random.default_rng(0)
        sample = rng.random(50_000)
        estimator = P2Quantile(0.5)
        estimator.extend(sample)
        assert estimator.value == pytest.approx(0.5, abs=0.02)

    def test_p90_of_normal(self):
        rng = np.random.default_rng(1)
        sample = rng.normal(size=50_000)
        estimator = P2Quantile(0.9)
        estimator.extend(sample)
        true = float(np.quantile(sample, 0.9))
        assert estimator.value == pytest.approx(true, abs=0.05)

    def test_heavy_tailed_median(self):
        rng = np.random.default_rng(2)
        sample = rng.lognormal(mean=10, sigma=1.5, size=50_000)
        estimator = P2Quantile(0.5)
        estimator.extend(sample)
        true = float(np.median(sample))
        assert estimator.value == pytest.approx(true, rel=0.1)

    def test_estimate_within_observed_range(self):
        rng = np.random.default_rng(3)
        sample = rng.exponential(size=2_000)
        estimator = P2Quantile(0.25)
        estimator.extend(sample)
        assert sample.min() <= estimator.value <= sample.max()

    def test_count_tracks_stream(self):
        estimator = P2Quantile(0.5)
        estimator.extend(range(100))
        assert estimator.count == 100

    def test_multiple_quantiles_ordered(self):
        rng = np.random.default_rng(4)
        sample = rng.normal(size=20_000)
        estimators = [P2Quantile(q) for q in (0.1, 0.5, 0.9)]
        for estimator in estimators:
            estimator.extend(sample)
        values = [estimator.value for estimator in estimators]
        assert values[0] < values[1] < values[2]
