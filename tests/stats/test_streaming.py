"""Tests for streaming moments and space-saving top-k."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.streaming import SpaceSavingTopK, StreamingMoments

value_lists = st.lists(st.floats(min_value=-1e8, max_value=1e8, allow_nan=False), min_size=1, max_size=200)


class TestStreamingMoments:
    def test_empty_defaults(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert moments.mean == 0.0
        assert moments.variance == 0.0

    @given(value_lists)
    def test_matches_numpy(self, values):
        moments = StreamingMoments()
        moments.extend(values)
        arr = np.asarray(values)
        assert moments.count == arr.size
        assert moments.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert moments.variance == pytest.approx(arr.var(), rel=1e-6, abs=1e-4)
        assert moments.min == arr.min()
        assert moments.max == arr.max()

    @given(value_lists, value_lists)
    def test_merge_equals_concatenation(self, left, right):
        a = StreamingMoments()
        a.extend(left)
        b = StreamingMoments()
        b.extend(right)
        merged = a.merge(b)
        both = StreamingMoments()
        both.extend(left + right)
        assert merged.count == both.count
        assert merged.mean == pytest.approx(both.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(both.variance, rel=1e-6, abs=1e-4)

    def test_merge_with_empty(self):
        a = StreamingMoments()
        a.extend([1.0, 2.0])
        merged = a.merge(StreamingMoments())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)


class TestSpaceSavingTopK:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            SpaceSavingTopK(0)

    def test_exact_when_under_capacity(self):
        topk = SpaceSavingTopK(10)
        topk.extend(["a", "b", "a", "c", "a"])
        assert topk.top(1) == [("a", 3)]
        assert topk.guaranteed_count("a") == 3

    def test_never_exceeds_capacity(self):
        topk = SpaceSavingTopK(5)
        topk.extend(str(i) for i in range(100))
        assert len(topk) == 5

    def test_heavy_hitter_guarantee(self):
        # A key with frequency > N/capacity must be tracked.
        topk = SpaceSavingTopK(10)
        rng = np.random.default_rng(0)
        stream = ["hot"] * 400 + [f"cold{i}" for i in rng.integers(0, 500, size=600)]
        rng.shuffle(stream)
        topk.extend(stream)
        assert "hot" in topk
        key, estimate = topk.top(1)[0]
        assert key == "hot"
        assert estimate >= 400  # overestimates, never under

    def test_estimate_never_underestimates(self):
        topk = SpaceSavingTopK(3)
        stream = ["a"] * 10 + ["b"] * 8 + ["c"] * 5 + ["d", "e", "f"]
        topk.extend(stream)
        for key, true in (("a", 10), ("b", 8)):
            tracked = dict(topk.top())
            if key in tracked:
                assert tracked[key] >= true

    def test_total_counts_stream_length(self):
        topk = SpaceSavingTopK(2)
        topk.extend(["x"] * 7)
        topk.add("y", count=3)
        assert topk.total == 10

    def test_matches_naive_min_scan_reference(self):
        # Regression for the stream-summary rewrite: the bucketed structure
        # must produce the same estimates as the textbook implementation
        # that min-scans the counter table on every eviction.  Which of
        # several *tied* minimum counters gets evicted is tie-arbitrary, so
        # we compare what the algorithm actually guarantees: the multiset
        # of tracked counts and the identity of the clear heavy hitters.

        class NaiveSpaceSaving:
            def __init__(self, capacity):
                self.capacity = capacity
                self.counters = {}

            def add(self, key):
                if key in self.counters:
                    self.counters[key][0] += 1
                    return
                if len(self.counters) < self.capacity:
                    self.counters[key] = [1, 0]
                    return
                victim_key = min(self.counters, key=lambda k: self.counters[k][0])
                victim = self.counters.pop(victim_key)
                self.counters[key] = [victim[0] + 1, victim[0]]

        rng = np.random.default_rng(5)
        stream = [f"k{int(z)}" for z in rng.zipf(1.3, size=20_000)]
        fast = SpaceSavingTopK(50)
        naive = NaiveSpaceSaving(50)
        for key in stream:
            fast.add(key)
            naive.add(key)
        fast_counts = sorted(count for _, count in fast.top())
        naive_counts = sorted(count for count, _ in naive.counters.values())
        assert fast_counts == naive_counts
        naive_top = [
            key for key, _ in sorted(naive.counters.items(), key=lambda kv: -kv[1][0])[:10]
        ]
        assert [key for key, _ in fast.top(10)] == naive_top

    def test_eviction_sequence_unchanged_when_minimum_is_unique(self):
        # With a unique minimum at every eviction the whole trajectory is
        # deterministic; pin the exact top()/guaranteed_count() results the
        # pre-rewrite implementation produced.
        topk = SpaceSavingTopK(3)
        topk.extend(["a"] * 10 + ["b"] * 8 + ["c"] * 5)
        topk.add("d")  # evicts c (5): d = 6, error 5
        topk.add("e")  # evicts d (6): e = 7, error 6
        topk.add("f")  # evicts e (7): f = 8, error 7
        assert topk.top() == [("a", 10), ("b", 8), ("f", 8)]
        assert topk.guaranteed_count("a") == 10
        assert topk.guaranteed_count("b") == 8
        assert topk.guaranteed_count("f") == 1
        assert topk.guaranteed_count("c") == 0
        assert topk.total == 26

    def test_adversarial_distinct_stream_stays_fast(self):
        # Perf regression: every add past capacity evicts, and the eviction
        # used to min-scan all `capacity` counters — quadratic on a stream
        # of all-distinct keys.  The bucketed structure handles the same
        # stream in roughly linear time; generously bounded here so the
        # test stays robust on slow machines while still failing the old
        # quadratic implementation by an order of magnitude.
        import time

        topk = SpaceSavingTopK(2000)
        start = time.perf_counter()
        for i in range(100_000):
            topk.add(i)
        elapsed = time.perf_counter() - start
        assert len(topk) == 2000
        assert topk.total == 100_000
        assert elapsed < 5.0  # old implementation: ~2e8 scan steps

    def test_nonpositive_count_rejected(self):
        topk = SpaceSavingTopK(2)
        with pytest.raises(ValueError):
            topk.add("a", count=0)
        with pytest.raises(ValueError):
            topk.add("a", count=-3)

    def test_bulk_counts_keep_bucket_order(self):
        # count > 1 increments walk the bucket list; the ordering invariant
        # (and therefore min-eviction) must survive interleaved bulk adds.
        topk = SpaceSavingTopK(3)
        topk.add("a", count=7)
        topk.add("b", count=2)
        topk.add("c", count=9)
        topk.add("b", count=4)  # b: 2 -> 6, hops past no bucket, lands between
        topk.add("d", count=1)  # evicts b (6): d = 7, error 6
        assert topk.top() == [("c", 9), ("a", 7), ("d", 7)]
        assert topk.guaranteed_count("d") == 1

    def test_guaranteed_count_of_untracked_is_zero(self):
        topk = SpaceSavingTopK(2)
        topk.extend(["a", "b"])
        assert topk.guaranteed_count("zzz") == 0
