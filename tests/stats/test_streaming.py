"""Tests for streaming moments and space-saving top-k."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.streaming import SpaceSavingTopK, StreamingMoments

value_lists = st.lists(st.floats(min_value=-1e8, max_value=1e8, allow_nan=False), min_size=1, max_size=200)


class TestStreamingMoments:
    def test_empty_defaults(self):
        moments = StreamingMoments()
        assert moments.count == 0
        assert moments.mean == 0.0
        assert moments.variance == 0.0

    @given(value_lists)
    def test_matches_numpy(self, values):
        moments = StreamingMoments()
        moments.extend(values)
        arr = np.asarray(values)
        assert moments.count == arr.size
        assert moments.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
        assert moments.variance == pytest.approx(arr.var(), rel=1e-6, abs=1e-4)
        assert moments.min == arr.min()
        assert moments.max == arr.max()

    @given(value_lists, value_lists)
    def test_merge_equals_concatenation(self, left, right):
        a = StreamingMoments()
        a.extend(left)
        b = StreamingMoments()
        b.extend(right)
        merged = a.merge(b)
        both = StreamingMoments()
        both.extend(left + right)
        assert merged.count == both.count
        assert merged.mean == pytest.approx(both.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(both.variance, rel=1e-6, abs=1e-4)

    def test_merge_with_empty(self):
        a = StreamingMoments()
        a.extend([1.0, 2.0])
        merged = a.merge(StreamingMoments())
        assert merged.count == 2
        assert merged.mean == pytest.approx(1.5)


class TestSpaceSavingTopK:
    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            SpaceSavingTopK(0)

    def test_exact_when_under_capacity(self):
        topk = SpaceSavingTopK(10)
        topk.extend(["a", "b", "a", "c", "a"])
        assert topk.top(1) == [("a", 3)]
        assert topk.guaranteed_count("a") == 3

    def test_never_exceeds_capacity(self):
        topk = SpaceSavingTopK(5)
        topk.extend(str(i) for i in range(100))
        assert len(topk) == 5

    def test_heavy_hitter_guarantee(self):
        # A key with frequency > N/capacity must be tracked.
        topk = SpaceSavingTopK(10)
        rng = np.random.default_rng(0)
        stream = ["hot"] * 400 + [f"cold{i}" for i in rng.integers(0, 500, size=600)]
        rng.shuffle(stream)
        topk.extend(stream)
        assert "hot" in topk
        key, estimate = topk.top(1)[0]
        assert key == "hot"
        assert estimate >= 400  # overestimates, never under

    def test_estimate_never_underestimates(self):
        topk = SpaceSavingTopK(3)
        stream = ["a"] * 10 + ["b"] * 8 + ["c"] * 5 + ["d", "e", "f"]
        topk.extend(stream)
        for key, true in (("a", 10), ("b", 8)):
            tracked = dict(topk.top())
            if key in tracked:
                assert tracked[key] >= true

    def test_total_counts_stream_length(self):
        topk = SpaceSavingTopK(2)
        topk.extend(["x"] * 7)
        topk.add("y", count=3)
        assert topk.total == 10

    def test_guaranteed_count_of_untracked_is_zero(self):
        topk = SpaceSavingTopK(2)
        topk.extend(["a", "b"])
        assert topk.guaranteed_count("zzz") == 0
