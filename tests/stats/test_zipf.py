"""Tests for the Zipf distribution and exponent fitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.stats.zipf import ZipfDistribution, fit_zipf_mle


class TestZipfDistribution:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            ZipfDistribution(0, 1.0)
        with pytest.raises(ConfigError):
            ZipfDistribution(10, 0.0)

    def test_probabilities_sum_to_one(self):
        dist = ZipfDistribution(100, 0.9)
        assert dist.probabilities.sum() == pytest.approx(1.0)

    def test_probabilities_decrease_with_rank(self):
        dist = ZipfDistribution(50, 1.2)
        p = dist.probabilities
        assert np.all(np.diff(p) <= 0)

    def test_pmf_ratio_follows_power_law(self):
        dist = ZipfDistribution(100, 1.0)
        assert dist.pmf(1) / dist.pmf(2) == pytest.approx(2.0)

    def test_pmf_outside_support_is_zero(self):
        dist = ZipfDistribution(5, 1.0)
        assert dist.pmf(0) == 0.0
        assert dist.pmf(6) == 0.0

    def test_sample_within_support(self):
        dist = ZipfDistribution(30, 0.8)
        ranks = dist.sample(0, size=1000)
        assert ranks.min() >= 1
        assert ranks.max() <= 30

    def test_sample_reproducible(self):
        dist = ZipfDistribution(30, 0.8)
        np.testing.assert_array_equal(dist.sample(5, 100), dist.sample(5, 100))

    def test_sample_skews_to_low_ranks(self):
        dist = ZipfDistribution(1000, 1.1)
        ranks = dist.sample(0, size=5000)
        assert np.mean(ranks <= 100) > 0.5

    def test_head_mass_increases_with_exponent(self):
        flat = ZipfDistribution(1000, 0.3).head_mass(0.1)
        steep = ZipfDistribution(1000, 1.5).head_mass(0.1)
        assert steep > flat

    def test_head_mass_bounds(self):
        dist = ZipfDistribution(100, 1.0)
        assert dist.head_mass(1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            dist.head_mass(0.0)


class TestFitZipf:
    def test_needs_two_counts(self):
        with pytest.raises(ValueError):
            fit_zipf_mle([5])

    def test_recovers_known_exponent(self):
        true_s = 1.0
        n = 2000
        dist = ZipfDistribution(n, true_s)
        counts = np.round(dist.probabilities * 500_000).astype(int)
        fitted = fit_zipf_mle(counts)
        assert abs(fitted - true_s) <= 0.1

    def test_recovers_from_samples(self):
        dist = ZipfDistribution(500, 0.8)
        ranks = dist.sample(3, size=100_000)
        counts = np.bincount(ranks)[1:]
        fitted = fit_zipf_mle(counts)
        assert abs(fitted - 0.8) <= 0.15

    @settings(max_examples=25)
    @given(st.lists(st.integers(min_value=1, max_value=10_000), min_size=2, max_size=60))
    def test_fit_always_in_grid_range(self, counts):
        fitted = fit_zipf_mle(counts)
        assert 0.05 <= fitted <= 2.5

    def test_order_invariant(self):
        counts = [100, 50, 20, 10, 5, 2, 1]
        assert fit_zipf_mle(counts) == fit_zipf_mle(list(reversed(counts)))
